"""Sweep execution engines: warm worker pool, spawn-per-unit, shm store.

The figure/table sweeps run many independent ``(workload, techniques)``
units.  PR 3's resilient harness paid a full process spawn per *attempt*:
interpreter fork, module import state, cold trace cache, cold warm-L2
image cache -- orchestration overhead that dominates short units.  This
module keeps those costs amortised:

* :class:`WorkerPool` -- a persistent pool of warm workers.  Each worker
  is a long-lived child process running :func:`_pool_worker_main`, a
  request/response loop over a duplex pipe.  Across units a worker keeps
  its imported modules, its process-wide trace cache, and the memoised
  warm-L2 images, so only the first unit a worker sees pays setup.  A
  worker is *recycled* (discarded and lazily replaced) only when it
  crashes (pipe EOF) or hangs (the harness aborts it on deadline); a unit
  that merely raises keeps its worker warm.
* :class:`SpawnExecutor` -- the PR 3 per-unit-spawn path behind the same
  executor interface, kept as the benchmark reference and fallback.
* :class:`SharedTraceStore` -- parent-side refcounted export of traces
  into named ``multiprocessing.shared_memory`` segments, so workers
  attach multi-million-record columns zero-copy instead of receiving a
  pickled copy per worker.  Segments are unlinked when their refcount
  drops to zero and unconditionally in :meth:`SharedTraceStore.close`,
  which the sweep calls in a ``finally`` -- a crashed or recycled worker
  can never leak ``/dev/shm`` entries, because workers never own
  segments.

Both executors speak the same protocol to the resilient harness:
``start()`` returns a pollable connection, ``finish()`` collects the
attempt's message (``None`` means the worker died without reporting; the
harness may also pass a message it already received off the pipe),
``abort()`` terminates a hung attempt -- waiting briefly for the
SIGTERM-flushed partial telemetry message the worker's abort handler
tries to send, and returning that salvage (or ``None``) -- and
``close()`` tears everything down.  Wire messages carry a telemetry
snapshot as their last element (see :mod:`repro.obs.campaign`).

Heartbeats: when the ``obs_spec`` carries a positive ``heartbeat_s``,
every attempt runs a :class:`~repro.experiments.supervise.HeartbeatPump`
thread that piggybacks ``("hb", seq)`` liveness beats on the *same*
duplex pipe the result travels on -- no extra file descriptors, no wire
format change (terminal messages are still the PR 6 tuples; parents that
do not expect beats simply skip them, see :func:`_recv_final`).  Beats
share a send lock with the final message because ``Connection.send`` is
not thread-safe.  The harness's timeout/retry/checkpoint semantics live
entirely in :func:`repro.experiments.parallel.resilient_sweep` and are
identical on either engine.
"""

from __future__ import annotations

import gc
import multiprocessing
import threading
import time
import traceback
from typing import Any

from repro.experiments.parallel import ParallelWorkerError, _workload_task
from repro.faults.chaos import (
    ChaosWorkerProxy,
    clear_heartbeat_control,
    register_heartbeat_control,
)
from repro.faults.plan import FaultPlan
from repro.obs.campaign import (
    WorkerAborted,
    begin_worker_obs,
    end_worker_obs,
    install_sigterm_flush,
)
from repro.obs.metrics import get_default_registry
from repro.workloads.trace import Trace

__all__ = [
    "SharedTraceStore",
    "SpawnExecutor",
    "WorkerPool",
    "active_shm_segments",
    "created_shm_segments",
]

#: Sentinel distinguishing "no pre-received message" from an explicit
#: ``None`` ("the worker died mute") in ``finish(conn, message=...)``.
_NO_MESSAGE = object()


def _is_heartbeat(message: Any) -> bool:
    """Whether a wire message is a liveness beat rather than a result."""
    return (
        isinstance(message, tuple)
        and len(message) == 2
        and message[0] == "hb"
    )


def _recv_final(conn) -> Any:
    """Receive the next *terminal* message, skipping queued heartbeats.

    Raises ``EOFError``/``OSError`` like a bare ``recv`` when the worker
    died -- callers already map that to the mute-crash path.
    """
    while True:
        message = conn.recv()
        if _is_heartbeat(message):
            continue
        return message


def _drain_salvage(conn, timeout: float = 0.5) -> Any:
    """Poll briefly for an aborted worker's salvage message.

    Heartbeats queued before the SIGTERM landed are skipped; ``None``
    when nothing terminal arrives in time (telemetry is then *lost*).
    """
    deadline = time.monotonic() + timeout
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return None
        try:
            if not conn.poll(remaining):
                return None
            message = conn.recv()
        except (EOFError, OSError):
            return None
        if _is_heartbeat(message):
            continue
        return message


# ----------------------------------------------------------------------
# Shared-memory segment bookkeeping
#
# Every segment this process creates is recorded here so tests (and the
# CI smoke gate) can prove none outlive their sweep.  The *live* set
# holds names created but not yet unlinked; the *created* list is the
# full history.
# ----------------------------------------------------------------------

_LIVE_SEGMENTS: set[str] = set()
_CREATED_SEGMENTS: list[str] = []


def active_shm_segments() -> list[str]:
    """Names of shared segments this process created and has not unlinked.

    Empty after every well-behaved sweep; a non-empty result is a leak.
    """
    return sorted(_LIVE_SEGMENTS)


def created_shm_segments() -> list[str]:
    """All segment names this process ever created (leak-audit history)."""
    return list(_CREATED_SEGMENTS)


class SharedTraceStore:
    """Refcounted exporter of traces into shared-memory segments.

    The sweep parent acquires one reference per unit that ships a given
    trace (dual-core mixes share profile traces across units, so counts
    exceed one); the segment is unlinked when the last reference is
    released or, unconditionally, on :meth:`close`.  Attaching workers
    never unlink -- segment lifetime is owned entirely by this store, so
    a worker crash mid-unit cannot leak the segment.
    """

    def __init__(self) -> None:
        # key -> [shm, handle, refcount]
        self._entries: dict[Any, list] = {}

    def acquire(self, key: Any, trace: Trace):
        """Export ``trace`` (once) and take a reference; returns the handle."""
        entry = self._entries.get(key)
        if entry is None:
            shm, handle = trace.to_shm()
            _LIVE_SEGMENTS.add(handle.segment)
            _CREATED_SEGMENTS.append(handle.segment)
            entry = self._entries[key] = [shm, handle, 0]
        entry[2] += 1
        return entry[1]

    def release(self, key: Any) -> None:
        """Drop one reference; unlink the segment when none remain."""
        entry = self._entries.get(key)
        if entry is None:
            return
        entry[2] -= 1
        if entry[2] <= 0:
            self._destroy(key)

    def close(self) -> None:
        """Unlink every segment regardless of refcount (sweep ``finally``)."""
        for key in list(self._entries):
            self._destroy(key)

    def _destroy(self, key: Any) -> None:
        shm, handle, _refs = self._entries.pop(key)
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            _LIVE_SEGMENTS.discard(handle.segment)

    def __len__(self) -> int:
        return len(self._entries)


# ----------------------------------------------------------------------
# Attempt execution (shared by both executors' children)
# ----------------------------------------------------------------------


def _attempt_message(
    task: tuple,
    plan: FaultPlan | None,
    workload: str,
    attempt: int,
    obs_spec: dict | None = None,
    conn: Any = None,
    send_lock: threading.Lock | None = None,
) -> tuple:
    """Run one unit attempt; return the wire message, never raise.

    Applies the fault plan's Plane-2 chaos scripting exactly as the PR 3
    spawn path did: a scripted ``crash`` is an ``os._exit`` inside the
    proxy and never returns (the parent sees the pipe close with no
    message, like a real segfault), ``hang`` sleeps past the harness
    deadline, ``corrupt`` mangles the payload for parent-side validation
    to catch, ``raise`` surfaces as a deterministic error message.

    Every message carries the attempt's telemetry snapshot as its last
    element: ``("ok", payload, telemetry)`` on success, ``("error",
    exc_type, detail, telemetry)`` on failure, and ``("aborted",
    exc_type, detail, telemetry)`` when the harness SIGTERMed the
    attempt mid-flight -- the snapshot is then flagged *partial* and
    holds whatever the unit had flushed before dying.  Telemetry rides
    outside the validated result payload, so a chaos-corrupted result
    cannot corrupt its own telemetry.

    When ``obs_spec`` carries a positive ``heartbeat_s`` and a ``conn``
    is supplied, the attempt runs under a
    :class:`~repro.experiments.supervise.HeartbeatPump` beating on that
    connection for its whole duration (including chaos hangs -- a
    hanging-but-beating worker is *slow*, not *hung*).  The pump is
    registered as the chaos plane's heartbeat control so a scripted
    ``stall-heartbeat`` can flatline it without stopping the attempt.
    """
    spec = obs_spec or {}
    obs = begin_worker_obs(trace_capacity=int(spec.get("trace_capacity", 0)))
    pump = None
    heartbeat_s = float(spec.get("heartbeat_s") or 0.0)
    if heartbeat_s > 0 and conn is not None:
        from repro.experiments.supervise import HeartbeatPump

        pump = HeartbeatPump(
            conn, send_lock or threading.Lock(), heartbeat_s
        )
        register_heartbeat_control(pump.suspend)
        pump.start()
    try:
        try:
            if plan is not None and plan.has_chaos():
                proxy = ChaosWorkerProxy(plan, workload, attempt)
                result = proxy(lambda: _workload_task(task))
            else:
                result = _workload_task(task)
            return ("ok", result, obs.snapshot(partial=False))
        except WorkerAborted as exc:
            return ("aborted", "WorkerAborted", str(exc), obs.snapshot(partial=True))
        except ParallelWorkerError as exc:
            return ("error", exc.exc_type, exc.detail, obs.snapshot(partial=True))
        except BaseException as exc:  # noqa: BLE001 -- must not die silently
            return (
                "error",
                type(exc).__name__,
                traceback.format_exc(),
                obs.snapshot(partial=True),
            )
    finally:
        if pump is not None:
            clear_heartbeat_control()
            pump.stop()
        end_worker_obs()


def _pool_worker_main(conn) -> None:
    """Warm worker request loop: serve unit attempts until told to stop.

    State deliberately persists across requests -- the process-wide trace
    cache, memoised warm-L2 images, and imported modules are the warmth
    the pool exists to amortise.  The loop exits on a ``stop`` request or
    when the parent end of the pipe disappears.
    """
    # A warm worker lives for the whole sweep with a large inherited heap
    # (modules, traces, materialised record views).  Freeze it out of the
    # cyclic collector: per-unit garbage still dies young, but full
    # collections stop rescanning -- and COW-unsharing -- objects that
    # live until exit anyway.
    gc.freeze()
    # SIGTERM (the harness aborting a hung attempt) raises WorkerAborted
    # so the in-flight attempt can flush a final partial telemetry
    # snapshot instead of dying mute.
    install_sigterm_flush()
    # One lock for everything this worker ever sends: the heartbeat pump
    # thread and the request loop's result sends must not interleave.
    send_lock = threading.Lock()
    try:
        while True:
            try:
                request = conn.recv()
            except (EOFError, OSError):
                break
            except WorkerAborted:
                break
            if (
                not isinstance(request, tuple)
                or not request
                or request[0] != "run"
            ):
                break
            _tag, task, workload, attempt, plan, *rest = request
            obs_spec = rest[0] if rest else None
            message = _attempt_message(
                task, plan, workload, attempt, obs_spec,
                conn=conn, send_lock=send_lock,
            )
            try:
                with send_lock:
                    conn.send(message)
            except (BrokenPipeError, OSError, WorkerAborted):
                break
            if message[0] == "aborted":
                # The harness condemned this worker; exit promptly so the
                # parent's reap join does not have to escalate.
                break
    except WorkerAborted:
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _spawn_entry(
    conn,
    task: tuple,
    plan: FaultPlan | None,
    workload: str,
    attempt: int,
    obs_spec: dict | None = None,
) -> None:
    """One-shot child entry for :class:`SpawnExecutor` (PR 3 semantics)."""
    install_sigterm_flush()
    send_lock = threading.Lock()
    try:
        message = _attempt_message(
            task, plan, workload, attempt, obs_spec,
            conn=conn, send_lock=send_lock,
        )
        with send_lock:
            conn.send(message)
    except (BrokenPipeError, OSError, WorkerAborted):
        pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------


class WorkerPool:
    """Persistent warm-worker executor.

    Workers are forked lazily (the first ``jobs`` concurrent attempts
    each fork one) and reused for every later attempt.  ``finish`` on a
    cleanly-reporting worker returns it to the idle list; a worker that
    died mid-attempt (crash) or was :meth:`abort`-ed (hang) is reaped and
    counted in ``workers_recycled`` -- its replacement forks lazily on
    the next ``start``, so recycling costs one spawn, not a pool
    rebuild.
    """

    def __init__(
        self, jobs: int, mp_context=None, obs_spec: dict | None = None
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        self._ctx = mp_context if mp_context is not None else multiprocessing
        self._jobs = jobs
        self._obs_spec = obs_spec
        self._idle: list[tuple[Any, Any]] = []  # (conn, process)
        self._busy: dict[Any, Any] = {}  # conn -> process
        self._ids: dict[Any, int] = {}  # conn -> worker id (spawn order)
        self._closed = False
        self.workers_spawned = 0
        self.workers_recycled = 0

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self) -> tuple[Any, Any]:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_pool_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        self._ids[parent_conn] = self.workers_spawned
        self.workers_spawned += 1
        get_default_registry().counter("sweep_pool.spawned").inc()
        return parent_conn, proc

    def _reap(self, conn, proc) -> None:
        """Discard a dead or condemned worker."""
        try:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join()
        finally:
            try:
                conn.close()
            except OSError:
                pass
        self._ids.pop(conn, None)
        self.workers_recycled += 1
        get_default_registry().counter("sweep_pool.recycled").inc()

    def worker_id(self, conn) -> int:
        """Stable identity of the worker behind a connection.

        Ids follow spawn order and survive warm reuse (the same worker
        serving ten units keeps one id), so the quarantine tracker can
        tell "one flaky worker died twice" from "two different workers
        died under the same unit".
        """
        return self._ids.get(conn, -1)

    # -- executor protocol ---------------------------------------------

    def start(
        self, task: tuple, workload: str, attempt: int, plan: FaultPlan | None
    ):
        """Dispatch one attempt to a warm (or freshly forked) worker.

        Returns the pollable connection the attempt will report on.
        """
        request = ("run", task, workload, attempt, plan, self._obs_spec)
        while True:
            if self._idle:
                conn, proc = self._idle.pop()
            else:
                conn, proc = self._spawn()
            try:
                conn.send(request)
            except (BrokenPipeError, OSError):
                # The idle worker died while parked; recycle and retry
                # with another (ultimately a fresh fork, which cannot
                # have a broken pipe at send time).
                self._reap(conn, proc)
                continue
            self._busy[conn] = proc
            return conn

    def finish(self, conn, message: Any = _NO_MESSAGE) -> tuple[Any, int | None]:
        """Collect an attempt's ``(message, exitcode)``.

        ``message is None`` means the worker died without reporting (it
        is reaped and counted recycled; ``exitcode`` carries its status).
        Otherwise the worker goes back to the idle list, still warm.
        The supervised loop receives messages itself (to see heartbeats)
        and passes the terminal one in; a bare ``finish(conn)`` still
        receives it here, skipping any queued beats.
        """
        proc = self._busy.pop(conn)
        if message is _NO_MESSAGE:
            try:
                message = _recv_final(conn)
            except (EOFError, OSError):
                message = None
        if message is None:
            self._reap(conn, proc)
            return None, proc.exitcode
        self._idle.append((conn, proc))
        return message, None

    def abort(self, conn) -> Any:
        """Terminate a (presumed hung) attempt; the worker is recycled.

        The worker's SIGTERM handler gives the dying attempt a moment to
        flush a final partial telemetry message; ``abort`` waits briefly
        for that salvage (skipping queued heartbeats) and returns it
        (``None`` when nothing arrived -- the attempt's telemetry is
        then *lost*).
        """
        proc = self._busy.pop(conn)
        proc.terminate()
        salvage = _drain_salvage(conn)
        self._reap(conn, proc)
        return salvage

    def close(self) -> None:
        """Stop idle workers gracefully, kill busy ones, drop all pipes."""
        if self._closed:
            return
        self._closed = True
        for conn, proc in self._idle:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join()
            try:
                conn.close()
            except OSError:
                pass
        self._idle.clear()
        for conn, proc in self._busy.items():
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join()
            try:
                conn.close()
            except OSError:
                pass
        self._busy.clear()


class SpawnExecutor:
    """PR 3 semantics: one freshly spawned process per attempt.

    Kept behind the executor protocol as the cold-start reference the
    throughput benchmark compares against, and as a fallback engine
    (``resilient_sweep(..., use_pool=False)``).
    """

    def __init__(self, mp_context=None, obs_spec: dict | None = None) -> None:
        self._ctx = mp_context if mp_context is not None else multiprocessing
        self._busy: dict[Any, Any] = {}
        self._ids: dict[Any, int] = {}
        self._obs_spec = obs_spec
        self.workers_spawned = 0
        self.workers_recycled = 0

    def start(
        self, task: tuple, workload: str, attempt: int, plan: FaultPlan | None
    ):
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_spawn_entry,
            args=(child_conn, task, plan, workload, attempt, self._obs_spec),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._ids[parent_conn] = self.workers_spawned
        self.workers_spawned += 1
        self._busy[parent_conn] = proc
        return parent_conn

    def worker_id(self, conn) -> int:
        """Spawn-order id (every attempt gets a fresh process/id here)."""
        return self._ids.get(conn, -1)

    def finish(self, conn, message: Any = _NO_MESSAGE) -> tuple[Any, int | None]:
        proc = self._busy.pop(conn)
        self._ids.pop(conn, None)
        if message is _NO_MESSAGE:
            try:
                message = _recv_final(conn)
            except (EOFError, OSError):
                message = None
        conn.close()
        proc.join()
        if message is None:
            # The one-shot worker died without reporting; count the loss
            # like the pool does so recycle accounting is engine-agnostic.
            self.workers_recycled += 1
        return message, proc.exitcode

    def abort(self, conn) -> Any:
        proc = self._busy.pop(conn)
        self._ids.pop(conn, None)
        proc.terminate()
        salvage = _drain_salvage(conn)
        proc.join(timeout=2.0)
        if proc.is_alive():
            proc.kill()
            proc.join()
        conn.close()
        self.workers_recycled += 1
        return salvage

    def close(self) -> None:
        for conn, proc in self._busy.items():
            proc.terminate()
            proc.join()
            conn.close()
        self._busy.clear()
        self._ids.clear()
