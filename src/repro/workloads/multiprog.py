"""The 17 dual-core multiprogrammed workloads of Table 1.

The paper builds them by randomly pairing the 34 benchmarks such that each
benchmark is used exactly once; we reproduce the exact pairings and acronyms
printed in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.profiles import BenchmarkProfile, get_profile

__all__ = ["DUAL_CORE_MIXES", "DualCoreMix", "get_mix"]


@dataclass(frozen=True)
class DualCoreMix:
    """One two-benchmark multiprogrammed workload."""

    acronym: str
    benchmarks: tuple[str, str]

    @property
    def profiles(self) -> tuple[BenchmarkProfile, BenchmarkProfile]:
        return (get_profile(self.benchmarks[0]), get_profile(self.benchmarks[1]))

    @property
    def name(self) -> str:
        return f"{self.benchmarks[0]}-{self.benchmarks[1]}"


#: Exact pairings from Table 1.
DUAL_CORE_MIXES: tuple[DualCoreMix, ...] = (
    DualCoreMix("GmDl", ("gemsFDTD", "dealII")),
    DualCoreMix("AsXb", ("astar", "xsbench")),
    DualCoreMix("GcGa", ("gcc", "gamess")),
    DualCoreMix("BzXa", ("bzip2", "xalancbmk")),
    DualCoreMix("LsLb", ("leslie3d", "lbm")),
    DualCoreMix("GkNe", ("gobmk", "nekbone")),
    DualCoreMix("OmGr", ("omnetpp", "gromacs")),
    DualCoreMix("NdCd", ("namd", "cactusADM")),
    DualCoreMix("CaTo", ("calculix", "tonto")),
    DualCoreMix("SpBw", ("sphinx", "bwaves")),
    DualCoreMix("LqPo", ("libquantum", "povray")),
    DualCoreMix("SjWr", ("sjeng", "wrf")),
    DualCoreMix("PeZe", ("perlbench", "zeusmp")),
    DualCoreMix("HmH2", ("hmmer", "h264ref")),
    DualCoreMix("SoMi", ("soplex", "milc")),
    DualCoreMix("McLu", ("mcf", "lulesh")),
    DualCoreMix("CoAm", ("comd", "amg2013")),
)

_BY_ACRONYM = {m.acronym: m for m in DUAL_CORE_MIXES}


def get_mix(acronym: str) -> DualCoreMix:
    """Look up a dual-core mix by its Table 1 acronym (e.g. ``"GkNe"``)."""
    try:
        return _BY_ACRONYM[acronym]
    except KeyError:
        raise KeyError(
            f"unknown mix {acronym!r}; known: {sorted(_BY_ACRONYM)}"
        ) from None


def validate_table1_coverage() -> None:
    """Every benchmark appears in exactly one mix (Table 1 property)."""
    seen: list[str] = []
    for mix in DUAL_CORE_MIXES:
        seen.extend(mix.benchmarks)
    if len(seen) != len(set(seen)):
        raise AssertionError("a benchmark appears in more than one mix")
    if len(seen) != 34:
        raise AssertionError(f"expected all 34 benchmarks, found {len(seen)}")
