"""Trace containers: the unit of work the timing model consumes.

A trace is a sequence of L2-level access records.  Each record is
``(line_addr, is_write, gap)`` where ``gap`` is the number of instructions
retired since the previous L2 access (this folds the L1 filtering into the
trace: ``gap`` counts both non-memory instructions and L1-hit accesses,
whose latency is absorbed into the workload's base CPI -- see DESIGN.md
section 1 on the substitution for Sniper + SPEC traces).

Storage is three parallel lists (fast to iterate with ``zip``); NumPy is
used only for (de)serialisation.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["Trace", "TraceCursor"]


@dataclass
class Trace:
    """An L2-level access trace for one core.

    Attributes
    ----------
    name:
        Workload name ("h264ref", ...).
    addrs / writes / gaps:
        Parallel per-record lists: line address, store flag, instructions
        since the previous record.
    base_cpi:
        Cycles per instruction charged for the ``gap`` work (captures issue
        width, L1 hit latency, and non-memory stalls for this workload).
    """

    name: str
    addrs: list[int] = field(default_factory=list)
    writes: list[bool] = field(default_factory=list)
    gaps: list[int] = field(default_factory=list)
    base_cpi: float = 1.0
    #: Memory-level parallelism: effective miss penalty divisor.  Streaming,
    #: prefetch-friendly codes overlap several outstanding misses (>= 3);
    #: dependent pointer chases see the full latency (~1).
    mem_mlp: float = 1.0
    #: Distinct-line LLC footprint the workload would have accumulated by
    #: the time measurement starts at paper scale (10 B fast-forward +
    #: 400 M measured instructions).  The simulator pre-fills this many
    #: lines with stale valid data before the run, reproducing the warmed
    #: cache state the refresh policies see in the paper.  0 disables.
    footprint_lines: int = 0

    def __post_init__(self) -> None:
        if not (len(self.addrs) == len(self.writes) == len(self.gaps)):
            raise ValueError("trace columns must have equal length")

    def __len__(self) -> int:
        return len(self.addrs)

    @property
    def instructions(self) -> int:
        """Total instructions represented (each record is 1 memory op + gap)."""
        return sum(self.gaps) + len(self.gaps)

    @property
    def write_fraction(self) -> float:
        return (sum(self.writes) / len(self.writes)) if self.writes else 0.0

    def distinct_lines(self) -> int:
        return len(set(self.addrs))

    def records(self):
        """Iterate ``(addr, is_write, gap)`` tuples."""
        return zip(self.addrs, self.writes, self.gaps)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as a compressed ``.npz`` file."""
        np.savez_compressed(
            str(path),
            name=np.array(self.name),
            addrs=np.asarray(self.addrs, dtype=np.int64),
            writes=np.asarray(self.writes, dtype=bool),
            gaps=np.asarray(self.gaps, dtype=np.int64),
            base_cpi=np.array(self.base_cpi),
            mem_mlp=np.array(self.mem_mlp),
            footprint_lines=np.array(self.footprint_lines),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        with np.load(str(path)) as data:
            return cls(
                name=str(data["name"]),
                addrs=data["addrs"].tolist(),
                writes=data["writes"].tolist(),
                gaps=data["gaps"].tolist(),
                base_cpi=float(data["base_cpi"]),
                mem_mlp=float(data["mem_mlp"]),
                footprint_lines=int(data["footprint_lines"]),
            )

    def to_bytes(self) -> bytes:
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            name=np.array(self.name),
            addrs=np.asarray(self.addrs, dtype=np.int64),
            writes=np.asarray(self.writes, dtype=bool),
            gaps=np.asarray(self.gaps, dtype=np.int64),
            base_cpi=np.array(self.base_cpi),
            mem_mlp=np.array(self.mem_mlp),
            footprint_lines=np.array(self.footprint_lines),
        )
        return buf.getvalue()


class TraceCursor:
    """A wrapping iterator over a trace.

    Implements the paper's dual-core methodology (Section 6.4): a benchmark
    that exhausts its trace before its co-runner keeps executing (the trace
    wraps around), but statistics for its speedup are recorded only for the
    first pass.
    """

    __slots__ = ("trace", "index", "wraps")

    def __init__(self, trace: Trace) -> None:
        if len(trace) == 0:
            raise ValueError("cannot iterate an empty trace")
        self.trace = trace
        self.index = 0
        self.wraps = 0

    @property
    def first_pass_done(self) -> bool:
        return self.wraps > 0

    def next_record(self) -> tuple[int, bool, int]:
        """Return the next ``(addr, is_write, gap)``, wrapping at the end."""
        t = self.trace
        i = self.index
        rec = (t.addrs[i], t.writes[i], t.gaps[i])
        i += 1
        if i >= len(t.addrs):
            i = 0
            self.wraps += 1
        self.index = i
        return rec
