"""Trace containers: the unit of work the timing model consumes.

A trace is a sequence of L2-level access records.  Each record is
``(line_addr, is_write, gap)`` where ``gap`` is the number of instructions
retired since the previous L2 access (this folds the L1 filtering into the
trace: ``gap`` counts both non-memory instructions and L1-hit accesses,
whose latency is absorbed into the workload's base CPI -- see DESIGN.md
section 1 on the substitution for Sniper + SPEC traces).

Storage is three parallel NumPy arrays (int64 / bool / int64) end-to-end:
(de)serialisation is a direct ``savez``/``load`` of the columns with no
``tolist`` round-trips, pickling for the parallel sweep workers ships the
compact binary buffers, and vectorised consumers slice the arrays
directly.  The scalar simulation hot loop wants plain Python ints (NumPy
scalar extraction costs more per element than list indexing), so
:meth:`Trace.columns` materialises list views once per trace and caches
them -- every :class:`TraceCursor` and every technique run over the same
trace shares that single materialisation.

For the warm-worker sweep pool, :meth:`Trace.to_shm` exports the columns
into one named ``multiprocessing.shared_memory`` segment and
:meth:`Trace.from_shm` reattaches them as zero-copy read-only views, so a
multi-million-record trace crosses the process boundary as a ~100-byte
:class:`TraceShmHandle` instead of a pickled copy of the arrays.  Segment
lifetime is owned by the *creating* process (see
:class:`repro.experiments.pool.SharedTraceStore`); attachers never
unlink.
"""

from __future__ import annotations

import io
import itertools
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["Trace", "TraceCorruptionError", "TraceCursor", "TraceShmHandle"]


@dataclass(frozen=True)
class TraceShmHandle:
    """Picklable descriptor of a trace exported to shared memory.

    Carries the segment name plus the scalar metadata needed to rebuild
    the :class:`Trace` on the attaching side; the columns themselves stay
    in the named segment and are never copied through the pickle path.
    """

    segment: str
    n_records: int
    name: str
    base_cpi: float
    mem_mlp: float
    footprint_lines: int

    @property
    def nbytes(self) -> int:
        """Payload bytes held by the segment (two int64 + one bool column)."""
        return 17 * self.n_records


def _attach_shm(segment: str):
    """Attach to an existing shared-memory segment without adopting its
    lifetime.

    On Python < 3.13 plain attachment also registers the segment with the
    process's resource tracker, which would unlink it when *this* process
    exits -- destroying it for the creator and every sibling.  The
    ``track=False`` keyword (3.13+) is the sanctioned fix; older versions
    need the explicit unregister.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=segment, track=False)
    except TypeError:
        pass
    shm = shared_memory.SharedMemory(name=segment)
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    return shm


class TraceCorruptionError(ValueError):
    """A trace archive failed its on-load integrity check.

    Raised by :meth:`Trace.load` when the ``.npz`` is unreadable, a
    required column is missing, the parallel columns disagree on length,
    or the stored record count does not match the columns (a truncated or
    partially-written file).  The message always names the file so a
    sweep over many archives can report *which* input is bad.
    """


@dataclass(eq=False)
class Trace:
    """An L2-level access trace for one core.

    Attributes
    ----------
    name:
        Workload name ("h264ref", ...).
    addrs / writes / gaps:
        Parallel per-record NumPy columns (``int64`` / ``bool`` / ``int64``):
        line address, store flag, instructions since the previous record.
        List inputs are converted on construction.
    base_cpi:
        Cycles per instruction charged for the ``gap`` work (captures issue
        width, L1 hit latency, and non-memory stalls for this workload).
    """

    name: str
    addrs: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    writes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))
    gaps: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    base_cpi: float = 1.0
    #: Memory-level parallelism: effective miss penalty divisor.  Streaming,
    #: prefetch-friendly codes overlap several outstanding misses (>= 3);
    #: dependent pointer chases see the full latency (~1).
    mem_mlp: float = 1.0
    #: Distinct-line LLC footprint the workload would have accumulated by
    #: the time measurement starts at paper scale (10 B fast-forward +
    #: 400 M measured instructions).  The simulator pre-fills this many
    #: lines with stale valid data before the run, reproducing the warmed
    #: cache state the refresh policies see in the paper.  0 disables.
    footprint_lines: int = 0

    def __post_init__(self) -> None:
        self.addrs = np.asarray(self.addrs, dtype=np.int64)
        self.writes = np.asarray(self.writes, dtype=bool)
        self.gaps = np.asarray(self.gaps, dtype=np.int64)
        if not (len(self.addrs) == len(self.writes) == len(self.gaps)):
            raise ValueError("trace columns must have equal length")
        self._instructions: int | None = None
        self._columns: tuple[list, list, list] | None = None
        self._records: dict[int, list[tuple]] = {}
        self._retire_records: dict[tuple, tuple[list[tuple], list[int]]] = {}
        self._set_index_columns: dict[int, np.ndarray] = {}
        self._tag_columns: dict[int, np.ndarray] = {}
        self._gcpi_lists: dict[float, list[float]] = {}

    def __len__(self) -> int:
        return len(self.addrs)

    @property
    def instructions(self) -> int:
        """Total instructions represented (each record is 1 memory op + gap).

        Cached after the first computation -- the columns are treated as
        immutable once the trace is built.
        """
        if self._instructions is None:
            self._instructions = int(self.gaps.sum()) + len(self.gaps)
        return self._instructions

    @property
    def write_fraction(self) -> float:
        return float(self.writes.mean()) if len(self.writes) else 0.0

    def distinct_lines(self) -> int:
        return int(np.unique(self.addrs).size) if len(self.addrs) else 0

    def records(self):
        """Iterate ``(addr, is_write, gap)`` tuples (plain Python scalars)."""
        return zip(*self.columns())

    def columns(self) -> tuple[list, list, list]:
        """The three columns as plain Python lists, materialised once.

        This is the scalar hot loop's view of the trace: list indexing
        yields native ints/bools (cheaper per record than NumPy scalar
        extraction), and the single cached materialisation is shared by
        every cursor and every technique run over this trace.
        """
        cols = self._columns
        if cols is None:
            cols = (
                self.addrs.tolist(),
                self.writes.tolist(),
                self.gaps.tolist(),
            )
            self._columns = cols
        return cols

    def records_list(self, offset: int = 0) -> list[tuple]:
        """``(addr | offset, is_write, gap)`` tuples, materialised once.

        The fast simulation loops fetch one tuple per record (a single
        list subscript plus an unpack) instead of indexing three parallel
        columns, and the per-core address offset is baked in up front so
        the hot path never pays the OR.  Cached per offset and shared by
        every run over this trace.
        """
        recs = self._records.get(offset)
        if recs is None:
            addrs, writes, gaps = self.columns()
            if offset:
                addrs = [addr | offset for addr in addrs]
            recs = list(zip(addrs, writes, gaps))
            self._records[offset] = recs
        return recs

    def retire_records(
        self, offset: int, base_cpi: float
    ) -> tuple[list[tuple], list[int]]:
        """Per-record retire view: ``(addr, is_write, gi*cpi, gi)`` + cumsum.

        ``gi = gap + 1`` is the record's instruction count and ``gi * cpi``
        its precomputed base cycle cost -- bit-identical to computing the
        product per record, since the operands are the same.  The second
        element is the running instruction total through each record, which
        lets the fast loops reconstruct the instruction counter at chunk
        boundaries instead of incrementing it per record.  Cached per
        (offset, cpi) and shared by every run over this trace.
        """
        key = (offset, base_cpi)
        cached = self._retire_records.get(key)
        if cached is None:
            addrs, writes, gaps = self.columns()
            if offset:
                addrs = [addr | offset for addr in addrs]
            gis = [gap + 1 for gap in gaps]
            recs = list(zip(addrs, writes, [gi * base_cpi for gi in gis], gis))
            gi_cum = list(itertools.accumulate(gis))
            cached = self._retire_records[key] = (recs, gi_cum)
        return cached

    def set_index_column(self, set_mask: int) -> np.ndarray:
        """Per-record cache set index (``addr & set_mask``) as a read-only
        NumPy column, materialised once per mask.

        This is the batch classification kernel's grouping key: the kernel
        slices it per event-horizon chunk instead of re-deriving set
        indices record by record.  Cached alongside the scalar record
        caches (and invalidated with them on pickling), so shm-attached
        traces re-derive it lazily on the attaching side rather than
        shipping it through the segment.
        """
        col = self._set_index_columns.get(set_mask)
        if col is None:
            col = self.addrs & set_mask
            col.flags.writeable = False
            self._set_index_columns[set_mask] = col
        return col

    def tag_column(self, set_bits: int) -> np.ndarray:
        """Per-record tag bits (``addr >> set_bits``), cached per shift.

        Companion to :meth:`set_index_column` for consumers that key on
        the tag alone (the batch kernel compares full line addresses, so
        it only needs the set index; characterisation tooling uses this).
        """
        col = self._tag_columns.get(set_bits)
        if col is None:
            col = self.addrs >> set_bits
            col.flags.writeable = False
            self._tag_columns[set_bits] = col
        return col

    def gcpi_list(self, base_cpi: float) -> list[float]:
        """Per-record base cycle cost ``(gap + 1) * base_cpi`` as a list.

        The same values :meth:`retire_records` bakes into its tuples, as a
        standalone column: the batch kernel's commit loop reads one float
        per record instead of unpacking the four-tuple.  Cached per CPI.
        """
        col = self._gcpi_lists.get(base_cpi)
        if col is None:
            col = [(gap + 1) * base_cpi for gap in self.columns()[2]]
            self._gcpi_lists[base_cpi] = col
        return col

    # ------------------------------------------------------------------
    # Pickling (parallel sweep workers)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        # Ship only the compact NumPy columns; the cached list
        # materialisation is rebuilt lazily on the receiving side.  A
        # shared-memory anchor is process-local (the arrays pickle as
        # ordinary copies), so it never rides along.
        state = dict(self.__dict__)
        state["_instructions"] = None
        state["_columns"] = None
        state["_records"] = {}
        state["_retire_records"] = {}
        state["_set_index_columns"] = {}
        state["_tag_columns"] = {}
        state["_gcpi_lists"] = {}
        state.pop("_shm", None)
        return state

    # ------------------------------------------------------------------
    # Shared-memory export (zero-copy distribution to sweep workers)
    # ------------------------------------------------------------------

    def to_shm(self, name: str | None = None):
        """Export the columns into one named shared-memory segment.

        Returns ``(shm, handle)``: the live ``SharedMemory`` object (the
        caller owns it -- ``close()`` + ``unlink()`` when every consumer
        is done) and the picklable :class:`TraceShmHandle` to ship to
        attaching processes.  Layout is ``addrs | gaps | writes`` so both
        int64 columns stay 8-byte aligned.
        """
        from multiprocessing import shared_memory

        n = len(self.addrs)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, 17 * n), name=name
        )
        np.ndarray((n,), np.int64, buffer=shm.buf)[:] = self.addrs
        np.ndarray((n,), np.int64, buffer=shm.buf, offset=8 * n)[:] = self.gaps
        np.ndarray((n,), np.bool_, buffer=shm.buf, offset=16 * n)[:] = self.writes
        handle = TraceShmHandle(
            segment=shm.name,
            n_records=n,
            name=self.name,
            base_cpi=self.base_cpi,
            mem_mlp=self.mem_mlp,
            footprint_lines=self.footprint_lines,
        )
        return shm, handle

    @classmethod
    def from_shm(cls, handle: TraceShmHandle) -> "Trace":
        """Rebuild a trace as zero-copy views over a shared segment.

        The columns are read-only NumPy views backed directly by the
        segment's buffer (no copy at any size); the attachment is held on
        the returned trace so the mapping outlives the views.  The
        creating process remains responsible for unlinking the segment.
        """
        shm = _attach_shm(handle.segment)
        n = handle.n_records
        addrs = np.ndarray((n,), np.int64, buffer=shm.buf)
        gaps = np.ndarray((n,), np.int64, buffer=shm.buf, offset=8 * n)
        writes = np.ndarray((n,), np.bool_, buffer=shm.buf, offset=16 * n)
        for arr in (addrs, gaps, writes):
            arr.flags.writeable = False
        trace = cls(
            name=handle.name,
            addrs=addrs,
            writes=writes,
            gaps=gaps,
            base_cpi=handle.base_cpi,
            mem_mlp=handle.mem_mlp,
            footprint_lines=handle.footprint_lines,
        )
        trace._shm = shm
        return trace

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as a compressed ``.npz`` file.

        ``n_records`` is stored alongside the columns as an integrity
        seal: :meth:`load` cross-checks it against the column lengths to
        catch truncated or partially-written archives.
        """
        np.savez_compressed(
            str(path),
            name=np.array(self.name),
            addrs=self.addrs,
            writes=self.writes,
            gaps=self.gaps,
            base_cpi=np.array(self.base_cpi),
            mem_mlp=np.array(self.mem_mlp),
            footprint_lines=np.array(self.footprint_lines),
            n_records=np.array(len(self.addrs)),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Load a ``.npz`` trace; the columns stay NumPy arrays.

        Optional scalar fields (``mem_mlp``, ``footprint_lines``,
        ``n_records``) default when absent, so archives written by older
        versions that predate those fields still load.

        Raises
        ------
        TraceCorruptionError
            If the archive is unreadable, a required column is missing,
            the parallel columns disagree on length, or the stored record
            count does not match the columns.  The message names the
            offending file.
        """
        try:
            with np.load(str(path)) as data:
                files = set(data.files)
                missing = {"name", "addrs", "writes", "gaps"} - files
                if missing:
                    raise TraceCorruptionError(
                        f"trace archive {path} is missing required "
                        f"field(s) {sorted(missing)}"
                    )
                addrs = data["addrs"]
                writes = data["writes"]
                gaps = data["gaps"]
                lengths = {len(addrs), len(writes), len(gaps)}
                if len(lengths) != 1:
                    raise TraceCorruptionError(
                        f"trace archive {path} has inconsistent column "
                        f"lengths: addrs={len(addrs)}, "
                        f"writes={len(writes)}, gaps={len(gaps)}"
                    )
                if "n_records" in files:
                    stored = int(data["n_records"])
                    if stored != len(addrs):
                        raise TraceCorruptionError(
                            f"trace archive {path} stores n_records="
                            f"{stored} but its columns hold {len(addrs)} "
                            f"records (truncated or partially written?)"
                        )
                return cls(
                    name=str(data["name"]),
                    addrs=addrs,
                    writes=writes,
                    gaps=gaps,
                    base_cpi=(
                        float(data["base_cpi"]) if "base_cpi" in files else 1.0
                    ),
                    mem_mlp=float(data["mem_mlp"]) if "mem_mlp" in files else 1.0,
                    footprint_lines=(
                        int(data["footprint_lines"])
                        if "footprint_lines" in files
                        else 0
                    ),
                )
        except TraceCorruptionError:
            raise
        except Exception as exc:
            # np.load failures surface as zipfile/OSError/ValueError/
            # EOFError depending on how the file is damaged; normalise
            # them all to one typed error naming the file.
            raise TraceCorruptionError(
                f"cannot read trace archive {path}: {exc}"
            ) from exc

    def to_bytes(self) -> bytes:
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            name=np.array(self.name),
            addrs=self.addrs,
            writes=self.writes,
            gaps=self.gaps,
            base_cpi=np.array(self.base_cpi),
            mem_mlp=np.array(self.mem_mlp),
            footprint_lines=np.array(self.footprint_lines),
            n_records=np.array(len(self.addrs)),
        )
        return buf.getvalue()


class TraceCursor:
    """A wrapping iterator over a trace.

    Implements the paper's dual-core methodology (Section 6.4): a benchmark
    that exhausts its trace before its co-runner keeps executing (the trace
    wraps around), but statistics for its speedup are recorded only for the
    first pass.

    The cursor reads the trace's cached scalar columns (shared across all
    cursors over the same trace); :meth:`chunk_view` additionally exposes
    zero-copy NumPy slices of the remaining first-pass records for
    vectorised consumers and the chunked fast loop.
    """

    __slots__ = ("trace", "index", "wraps", "_addrs", "_writes", "_gaps")

    def __init__(self, trace: Trace) -> None:
        if len(trace) == 0:
            raise ValueError("cannot iterate an empty trace")
        self.trace = trace
        self.index = 0
        self.wraps = 0
        self._addrs, self._writes, self._gaps = trace.columns()

    @property
    def first_pass_done(self) -> bool:
        return self.wraps > 0

    def columns(self) -> tuple[list, list, list]:
        """The trace's shared scalar columns (hot-loop view)."""
        return self._addrs, self._writes, self._gaps

    def next_record(self) -> tuple[int, bool, int]:
        """Return the next ``(addr, is_write, gap)``, wrapping at the end."""
        i = self.index
        rec = (self._addrs[i], self._writes[i], self._gaps[i])
        i += 1
        if i >= len(self._addrs):
            i = 0
            self.wraps += 1
        self.index = i
        return rec

    def chunk_view(
        self, max_records: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy views of up to ``max_records`` upcoming records.

        The views never cross the wrap point: at most ``len(trace) -
        index`` records are returned, so a caller consuming the full view
        lands exactly on the record boundary where the wrap (and the
        first-pass IPC snapshot) must be recorded.  The cursor itself is
        not advanced; pair with :meth:`advance`.
        """
        if max_records < 1:
            raise ValueError("chunk must cover at least one record")
        t = self.trace
        i = self.index
        j = min(i + max_records, len(t.addrs))
        return t.addrs[i:j], t.writes[i:j], t.gaps[i:j]

    def advance(self, count: int) -> None:
        """Consume ``count`` records, with the same wrap accounting as
        ``count`` calls to :meth:`next_record`."""
        if count < 0:
            raise ValueError("cannot advance backwards")
        n = len(self._addrs)
        i = self.index + count
        self.wraps += i // n
        self.index = i % n
