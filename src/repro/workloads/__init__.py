"""Workload substrate (system S15 in DESIGN.md).

Synthetic trace generation standing in for the paper's SPEC CPU2006 + HPC
proxy-app traces: a stack-distance generator, 34 per-benchmark behaviour
profiles, and the 17 dual-core multiprogrammed mixes of Table 1.
"""

from repro.workloads.trace import Trace, TraceCorruptionError, TraceCursor
from repro.workloads.synthetic import PhaseSpec, SyntheticTraceGenerator, generate_trace
from repro.workloads.profiles import (
    ALL_BENCHMARKS,
    HPC_BENCHMARKS,
    SPEC_BENCHMARKS,
    BenchmarkProfile,
    get_profile,
)
from repro.workloads.multiprog import DUAL_CORE_MIXES, DualCoreMix, get_mix

__all__ = [
    "ALL_BENCHMARKS",
    "BenchmarkProfile",
    "DUAL_CORE_MIXES",
    "DualCoreMix",
    "HPC_BENCHMARKS",
    "PhaseSpec",
    "SPEC_BENCHMARKS",
    "SyntheticTraceGenerator",
    "Trace",
    "TraceCorruptionError",
    "TraceCursor",
    "generate_trace",
    "get_mix",
    "get_profile",
]
