"""Stack-distance-based synthetic L2 trace generator (system S15).

The paper's evaluation drives a 4-8 MB LLC with SPEC CPU2006 / HPC-proxy
traces.  We cannot ship those, so this module generates traces whose
*LLC-visible* properties -- working-set size, per-set LRU-position reuse
profile, write fraction, memory intensity, phase behaviour, and LRU vs
non-LRU access-pattern shape -- are controlled directly, because those are
exactly the properties ESTEEM and RPV react to.

Model
-----
Addresses are organised into ``V`` *virtual sets* (default 4096, matching
the default L2 set count; caches with more/fewer real sets dilute/alias the
virtual sets, which mirrors how a real trace redistributes over a different
geometry).  Each virtual set keeps a recency stack of the lines recently
touched in it.  Every record is one of:

* ``near`` -- a stack-distance reuse: pick a virtual set, draw a depth from
  a geometric distribution with mean ``d_mean``, and touch the line at that
  recency depth (promoting it).  This is what generates LRU-friendly,
  monotonically-decaying position histograms (Section 3.1).
* ``far`` -- a uniform reuse anywhere in the working set (captures
  scattered pointer-chasing traffic; not promoted, an accepted
  approximation documented in DESIGN.md).
* ``new`` -- the next cold line, allocated sequentially, wrapping at the
  working-set size (streaming traffic).

The ``scan`` pattern instead walks the working set cyclically, which is the
classic anti-LRU access pattern (hits land at deep, non-monotonic recency
positions -- the omnetpp/xalancbmk behaviour the non-LRU guard of
Algorithm 1 exists for).  The ``stream`` pattern allocates cold lines
almost exclusively (libquantum/milc-style, ~100% miss rate).

Randomness is drawn vectorised with NumPy per segment; only the recency
stack maintenance runs in the per-record Python loop.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.profiles import BenchmarkProfile

__all__ = ["PhaseSpec", "SyntheticTraceGenerator", "generate_trace", "VIRTUAL_SETS"]

#: Number of virtual sets addresses are striped over (= default L2 set count).
VIRTUAL_SETS: int = 4096

_VSET_BITS: int = VIRTUAL_SETS.bit_length() - 1

#: Cap on per-virtual-set stack depth (bounds deque maintenance cost).
_MAX_STACK_DEPTH: int = 96


@dataclass(frozen=True)
class PhaseSpec:
    """One execution phase of a workload.

    Attributes
    ----------
    ws_lines:
        Working-set size in cache lines (64 B each); 65536 lines = 4 MB.
    p_new:
        Probability a record touches the next cold/streaming line.
    p_near:
        Probability of a geometric stack-distance reuse; the remainder
        ``1 - p_new - p_near`` is a uniform (``far``) reuse.
    d_mean:
        Mean recency depth of near reuses, in per-set position units
        (1.0 keeps hits at MRU; ~8 spreads them across a 16-way set).
    pattern:
        ``"mixture"`` (default LRU-friendly blend), ``"scan"`` (cyclic
        anti-LRU walk), or ``"stream"`` (cold sequential).
    segment_records:
        Records generated before the generator moves to the next phase
        (phases cycle; this drives intra-application variation, Fig. 2).
    """

    ws_lines: int
    p_new: float = 0.05
    p_near: float = 0.80
    d_mean: float = 3.0
    pattern: str = "mixture"
    segment_records: int = 50_000

    def __post_init__(self) -> None:
        if self.ws_lines < 1:
            raise ValueError("working set must contain at least one line")
        if not (0.0 <= self.p_new <= 1.0 and 0.0 <= self.p_near <= 1.0):
            raise ValueError("probabilities must be in [0, 1]")
        if self.p_new + self.p_near > 1.0 + 1e-9:
            raise ValueError("p_new + p_near must not exceed 1")
        if self.d_mean < 1.0:
            raise ValueError("d_mean must be at least 1")
        if self.pattern not in ("mixture", "scan", "stream"):
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.segment_records < 1:
            raise ValueError("segment must contain at least one record")


class SyntheticTraceGenerator:
    """Generates :class:`~repro.workloads.trace.Trace` objects from a profile."""

    def __init__(self, profile: "BenchmarkProfile", seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed

    def generate(
        self,
        max_instructions: int,
        max_records: int | None = None,
    ) -> Trace:
        """Generate a trace covering ``max_instructions`` instructions.

        Generation stops at whichever limit is hit first; every workload
        therefore represents the same instruction budget regardless of its
        memory intensity (matching the paper's fixed 400 M-instruction
        simulation windows).
        """
        profile = self.profile
        # zlib.crc32 rather than hash(): string hashing is salted per
        # process, and traces must be reproducible across runs.
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [zlib.crc32(profile.name.encode("utf-8")), self.seed]
            )
        )
        # Per-segment NumPy columns, concatenated once at the end -- the
        # trace stays array-backed with no list round-trips.
        addr_chunks: list[np.ndarray] = []
        write_chunks: list[np.ndarray] = []
        gap_chunks: list[np.ndarray] = []
        n_records = 0

        # Per-virtual-set recency stacks and cold-allocation cursors are
        # shared across phases (phases of one application share its address
        # space).  The stacks are pre-seeded with the largest phase's working
        # set: the trace represents a window 10 B instructions into the
        # run, by which point the working set is resident in the
        # application's reuse structure -- without seeding, a scaled-down
        # trace would start with depth-1 stacks and every near reuse would
        # collapse to the MRU position.
        stacks: dict[int, deque] = {}
        cold_cursor = self._seed_stacks(
            stacks, max(ph.ws_lines for ph in profile.phases)
        )
        scan_cursor = 0

        instructions = 0
        record_cap = max_records if max_records is not None else 1 << 62
        phases = profile.phases
        phase_idx = 0

        while instructions < max_instructions and n_records < record_cap:
            phase = phases[phase_idx % len(phases)]
            phase_idx += 1
            n = min(phase.segment_records, record_cap - n_records)
            seg = self._generate_segment(
                phase, n, rng, stacks, cold_cursor, scan_cursor
            )
            seg_addrs, seg_writes, seg_gaps, cold_cursor, scan_cursor = seg
            # Truncate the segment at the instruction budget.
            total = instructions + int(seg_gaps.sum()) + len(seg_gaps)
            if total > max_instructions:
                cum = np.cumsum(seg_gaps + 1) + instructions
                # side="left": when some prefix meets the budget exactly,
                # the record after it must not ride along (the loop would
                # never have asked for it).
                keep = int(np.searchsorted(cum, max_instructions, side="left")) + 1
                keep = max(1, min(keep, len(seg_addrs)))
                seg_addrs = seg_addrs[:keep]
                seg_writes = seg_writes[:keep]
                seg_gaps = seg_gaps[:keep]
            addr_chunks.append(seg_addrs)
            write_chunks.append(seg_writes)
            gap_chunks.append(seg_gaps)
            n_records += len(seg_addrs)
            instructions += int(seg_gaps.sum()) + len(seg_gaps)

        return Trace(
            name=profile.name,
            addrs=(
                np.concatenate(addr_chunks)
                if addr_chunks
                else np.empty(0, dtype=np.int64)
            ),
            writes=(
                np.concatenate(write_chunks)
                if write_chunks
                else np.empty(0, dtype=bool)
            ),
            gaps=(
                np.concatenate(gap_chunks)
                if gap_chunks
                else np.empty(0, dtype=np.int64)
            ),
            base_cpi=profile.base_cpi,
            mem_mlp=profile.mem_mlp,
            footprint_lines=profile.footprint_lines,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _seed_stacks(stacks: dict[int, deque], ws_lines: int) -> int:
        """Populate the per-virtual-set recency stacks with ``ws_lines``.

        Lines are laid out exactly as the cold allocator would have placed
        them; returns the cold-allocation cursor (== ws_lines, so the first
        "new" touch wraps, modelling steady-state streaming).
        """
        vbits = _VSET_BITS
        for vset in range(min(ws_lines, VIRTUAL_SETS)):
            per_set = (ws_lines - vset - 1) // VIRTUAL_SETS + 1
            dq = deque(maxlen=_MAX_STACK_DEPTH)
            for k in range(per_set):
                dq.append((k << vbits) | vset)
            stacks[vset] = dq
        return ws_lines

    def _generate_segment(
        self,
        phase: PhaseSpec,
        n: int,
        rng: np.random.Generator,
        stacks: dict[int, deque],
        cold_cursor: int,
        scan_cursor: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
        """Produce ``n`` records for one phase segment (NumPy columns)."""
        profile = self.profile
        # Vectorised randomness.
        writes = rng.random(n) < profile.write_fraction
        gap_mean = profile.gap_mean
        if gap_mean > 0:
            gaps = (rng.geometric(1.0 / (gap_mean + 1.0), size=n) - 1).astype(
                np.int64
            )
        else:
            gaps = np.zeros(n, dtype=np.int64)

        if phase.pattern == "scan":
            addrs, scan_cursor = self._scan_addresses(phase, n, rng, scan_cursor)
        else:
            addrs, cold_cursor = self._mixture_addresses(
                phase, n, rng, stacks, cold_cursor
            )
        return addrs, writes, gaps, cold_cursor, scan_cursor

    @staticmethod
    def _line_addr(vset: int, k: int) -> int:
        return (k << _VSET_BITS) | vset

    def _scan_addresses(
        self,
        phase: PhaseSpec,
        n: int,
        rng: np.random.Generator,
        cursor: int,
    ) -> tuple[np.ndarray, int]:
        """Cyclic sequential walk over the working set (anti-LRU)."""
        ws = phase.ws_lines
        idx = (np.arange(cursor, cursor + n)) % ws
        vsets = idx % VIRTUAL_SETS
        ks = idx // VIRTUAL_SETS
        addrs = ((ks << _VSET_BITS) | vsets).astype(np.int64)
        return addrs, (cursor + n) % ws

    def _mixture_addresses(
        self,
        phase: PhaseSpec,
        n: int,
        rng: np.random.Generator,
        stacks: dict[int, deque],
        cold_cursor: int,
    ) -> tuple[np.ndarray, int]:
        """Near/far/new mixture resolved against the virtual-set stacks."""
        ws = phase.ws_lines
        p_new = phase.p_new
        p_near = phase.p_near
        if phase.pattern == "stream":
            p_new, p_near = max(p_new, 0.95), min(p_near, 0.05)

        u = rng.random(n)
        # kind: 0 = new, 1 = near, 2 = far
        kinds = np.where(u < p_new, 0, np.where(u < p_new + p_near, 1, 2))
        depths = np.minimum(
            rng.geometric(1.0 / phase.d_mean, size=n) - 1, _MAX_STACK_DEPTH - 1
        ).tolist()
        far_ids = rng.integers(0, ws, size=n).tolist()
        vset_picks = rng.integers(0, VIRTUAL_SETS, size=n).tolist()
        kinds_list = kinds.tolist()

        vbits = _VSET_BITS
        addrs: list[int] = []
        append = addrs.append
        active_vsets: list[int] = list(stacks.keys())

        for i in range(n):
            kind = kinds_list[i]
            if kind == 1 and active_vsets:
                # Near reuse: geometric recency depth inside a virtual set
                # that has history.
                v = active_vsets[vset_picks[i] % len(active_vsets)]
                dq = stacks[v]
                d = depths[i]
                ln = len(dq)
                if d >= ln:
                    d = ln - 1
                if d == 0:
                    addr = dq[-1]
                else:
                    addr = dq[-1 - d]
                    del dq[-1 - d]
                    dq.append(addr)
                append(addr)
            elif kind == 2:
                # Far reuse: uniform over the working set (not promoted).
                line_id = far_ids[i]
                append(((line_id // VIRTUAL_SETS) << vbits) | (line_id % VIRTUAL_SETS))
            else:
                # New/cold line, allocated sequentially, wrapping at ws.
                line_id = cold_cursor % ws
                cold_cursor += 1
                v = line_id % VIRTUAL_SETS
                addr = ((line_id // VIRTUAL_SETS) << vbits) | v
                dq = stacks.get(v)
                if dq is None:
                    dq = deque(maxlen=_MAX_STACK_DEPTH)
                    stacks[v] = dq
                    active_vsets.append(v)
                dq.append(addr)
                append(addr)
        return np.asarray(addrs, dtype=np.int64), cold_cursor


def generate_trace(
    profile: "BenchmarkProfile",
    max_instructions: int,
    seed: int = 0,
    max_records: int | None = None,
) -> Trace:
    """Convenience wrapper: one-call trace generation."""
    return SyntheticTraceGenerator(profile, seed=seed).generate(
        max_instructions, max_records=max_records
    )
