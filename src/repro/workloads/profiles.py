"""Per-benchmark behaviour profiles for the 34 workloads of Table 1.

Each profile parameterises the synthetic generator so that the proxy
reproduces the qualitative LLC behaviour the paper attributes to its
namesake (Section 7.2):

* ``libquantum``/``milc``/``lbm``/``bwaves`` stream with near-100% miss
  rates and working sets far larger than the LLC ("the data reuse is very
  small ... ESTEEM aggressively reduces the cache active fraction").
* ``omnetpp``/``xalancbmk`` are non-LRU (cyclic scans; Algorithm 1's guard
  exists for them, and ESTEEM shows a small loss on them).
* ``mcf``/``soplex`` have working sets larger than the LLC with scattered
  reuse (small ESTEEM loss).
* ``gamess``/``povray``/``gobmk``/``hmmer`` barely use the LLC, so nearly
  all of it can be switched off (gamess posts the paper's largest single-
  core energy saving, 68.7%).
* ``h264ref`` is strongly phased -- it is the Figure 2 example workload.
* The HPC proxies: ``xsbench`` (huge randomly-accessed cross-section
  tables), ``amg2013`` (large sparse matvec), ``lulesh``/``comd`` (medium,
  phased stencil/MD), ``nekbone`` (small working set, compute-bound).

Working-set sizes are in 64 B lines: the single-core L2 holds 65 536 lines
(4 MB).  ``gap_mean`` is the mean instruction distance between L2 accesses
(so L2 accesses-per-kilo-instruction = 1000 / (gap_mean + 1)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.synthetic import PhaseSpec

__all__ = [
    "ALL_BENCHMARKS",
    "BenchmarkProfile",
    "HPC_BENCHMARKS",
    "SPEC_BENCHMARKS",
    "get_profile",
]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generator parameters standing in for one benchmark's ref-input run."""

    name: str
    acronym: str
    suite: str  # "spec" or "hpc"
    phases: tuple[PhaseSpec, ...]
    write_fraction: float
    #: Mean instructions between consecutive L2 accesses.
    gap_mean: float
    #: Cycles per instruction for the non-L2 work (issue + L1 hits).
    base_cpi: float
    #: Memory-level parallelism: divisor on the exposed miss penalty.
    #: Streaming/prefetchable codes overlap misses; pointer chases do not.
    mem_mlp: float = 1.5
    #: Marks the omnetpp/xalancbmk class whose hit histograms are bumpy
    #: (the non-LRU guard of Algorithm 1 is aimed at them).
    nonlru: bool = False
    #: Distinct-line LLC footprint accumulated at paper scale (10 B
    #: fast-forward + 400 M instructions); the simulator pre-fills this
    #: many stale valid lines before measurement.  Small-footprint codes
    #: (gamess, povray, ...) leave most of the LLC invalid, which is where
    #: RPV's savings come from (Section 7.2).
    footprint_lines: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("profile needs at least one phase")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write fraction must be in [0, 1]")
        if self.gap_mean < 0:
            raise ValueError("gap mean must be non-negative")
        if self.base_cpi <= 0:
            raise ValueError("base CPI must be positive")

    @property
    def l2_apki(self) -> float:
        """L2 accesses per kilo-instruction implied by ``gap_mean``."""
        return 1000.0 / (self.gap_mean + 1.0)

    @property
    def max_ws_lines(self) -> int:
        return max(p.ws_lines for p in self.phases)

    @property
    def is_nonlru(self) -> bool:
        """Whether this workload exhibits non-LRU hit-position behaviour."""
        return self.nonlru or any(p.pattern == "scan" for p in self.phases)


def _p(
    ws: int,
    p_new: float = 0.05,
    p_near: float = 0.80,
    d_mean: float = 3.0,
    pattern: str = "mixture",
    seg: int = 40_000,
) -> PhaseSpec:
    return PhaseSpec(
        ws_lines=ws,
        p_new=p_new,
        p_near=p_near,
        d_mean=d_mean,
        pattern=pattern,
        segment_records=seg,
    )


def _bench(
    name: str,
    acronym: str,
    suite: str,
    phases: tuple[PhaseSpec, ...],
    wf: float,
    gap: float,
    cpi: float,
    desc: str,
    mlp: float = 1.5,
    nonlru: bool = False,
) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        acronym=acronym,
        suite=suite,
        phases=phases,
        write_fraction=wf,
        gap_mean=gap,
        base_cpi=cpi,
        mem_mlp=mlp,
        nonlru=nonlru,
        footprint_lines=_FOOTPRINT_LINES[name],
        description=desc,
    )


#: Paper-scale distinct-line LLC footprints (10 B fast-forward + 400 M
#: instructions) in 64 B lines; 65 536 lines = 4 MB.  Sources: SPEC CPU2006
#: working-set characterisations (small hot sets for gamess/povray/hmmer,
#: multi-hundred-MB streams for lbm/libquantum/bwaves) and proxy-app docs.
_FOOTPRINT_LINES: dict[str, int] = {
    "astar": 80_000,
    "bwaves": 500_000,
    "bzip2": 56_000,
    "cactusADM": 150_000,
    "calculix": 16_000,
    "dealII": 52_000,
    "gamess": 8_000,
    "gcc": 60_000,
    "gemsFDTD": 400_000,
    "gobmk": 25_000,
    "gromacs": 25_000,
    "h264ref": 95_000,
    "hmmer": 9_000,
    "lbm": 500_000,
    "leslie3d": 300_000,
    "libquantum": 500_000,
    "mcf": 300_000,
    "milc": 400_000,
    "namd": 18_000,
    "omnetpp": 150_000,
    "perlbench": 42_000,
    "povray": 11_000,
    "sjeng": 38_000,
    "soplex": 250_000,
    "sphinx": 48_000,
    "tonto": 20_000,
    "wrf": 150_000,
    "xalancbmk": 150_000,
    "zeusmp": 58_000,
    "amg2013": 350_000,
    "comd": 42_000,
    "lulesh": 60_000,
    "nekbone": 28_000,
    "xsbench": 500_000,
}


# ----------------------------------------------------------------------
# SPEC CPU2006 (29 benchmarks, ref-input proxies)
# ----------------------------------------------------------------------

SPEC_BENCHMARKS: tuple[BenchmarkProfile, ...] = (
    _bench(
        "astar", "As", "spec",
        (_p(18_000, p_new=0.06, p_near=0.55, d_mean=8.0),),
        0.22, 110.0, 1.10, "path-finding; pointer chasing, moderate WS",
        mlp=1.1,
    ),
    _bench(
        "bwaves", "Bw", "spec",
        (_p(150_000, p_new=0.60, p_near=0.36, d_mean=2.0),),
        0.30, 40.0, 0.90, "blast-wave CFD; streaming, WS >> LLC", mlp=4.0,
    ),
    _bench(
        "bzip2", "Bz", "spec",
        (_p(28_000, p_new=0.08, p_near=0.62, d_mean=5.0),),
        0.35, 160.0, 1.00, "compression; medium WS, mixed reuse",
    ),
    _bench(
        "cactusADM", "Cd", "spec",
        (_p(35_000, p_new=0.15, p_near=0.60, d_mean=4.0),),
        0.33, 90.0, 0.95, "numerical relativity; regular stencil", mlp=2.0,
    ),
    _bench(
        "calculix", "Ca", "spec",
        (_p(5_000, p_new=0.03, p_near=0.85, d_mean=2.0),),
        0.25, 500.0, 0.80, "FEM solver; small hot working set",
    ),
    _bench(
        "dealII", "Dl", "spec",
        (_p(20_000, p_new=0.07, p_near=0.70, d_mean=4.0),),
        0.28, 180.0, 0.95, "adaptive FEM; medium WS",
    ),
    _bench(
        "gamess", "Ga", "spec",
        (_p(3_000, p_new=0.02, p_near=0.90, d_mean=1.5),),
        0.20, 900.0, 0.75, "quantum chemistry; tiny WS, largest ESTEEM saving",
    ),
    _bench(
        "gcc", "Gc", "spec",
        (
            _p(40_000, p_new=0.10, p_near=0.60, d_mean=6.0, seg=15_000),
            _p(12_000, p_new=0.05, p_near=0.75, d_mean=3.0, seg=15_000),
        ),
        0.30, 140.0, 1.20, "compiler; phased, medium-large WS",
    ),
    _bench(
        "gemsFDTD", "Gm", "spec",
        (_p(120_000, p_new=0.50, p_near=0.45, d_mean=2.5),),
        0.32, 45.0, 0.95, "FDTD electromagnetics; streaming sweeps", mlp=3.5,
    ),
    _bench(
        "gobmk", "Gk", "spec",
        (_p(8_000, p_new=0.04, p_near=0.80, d_mean=2.5),),
        0.24, 120.0, 1.15, "Go engine; small WS, L2-latency sensitive",
    ),
    _bench(
        "gromacs", "Gr", "spec",
        (_p(9_000, p_new=0.05, p_near=0.80, d_mean=2.5),),
        0.27, 300.0, 0.85, "molecular dynamics; small WS",
    ),
    _bench(
        "h264ref", "H2", "spec",
        (
            _p(4_000, p_new=0.03, p_near=0.85, d_mean=2.0, seg=8_000),
            _p(90_000, p_new=0.08, p_near=0.70, d_mean=8.0, seg=8_000),
            _p(20_000, p_new=0.05, p_near=0.75, d_mean=4.0, seg=8_000),
        ),
        0.30, 150.0, 1.00, "video encoder; strongly phased (Figure 2 example)",
    ),
    _bench(
        "hmmer", "Hm", "spec",
        (_p(3_500, p_new=0.02, p_near=0.90, d_mean=1.5),),
        0.35, 200.0, 0.80, "profile HMM search; tiny hot tables",
    ),
    _bench(
        "lbm", "Lb", "spec",
        (_p(180_000, p_new=0.70, p_near=0.27, d_mean=2.0),),
        0.45, 35.0, 0.90, "lattice Boltzmann; streaming, write heavy", mlp=4.0,
    ),
    _bench(
        "leslie3d", "Ls", "spec",
        (_p(80_000, p_new=0.35, p_near=0.58, d_mean=3.0),),
        0.33, 60.0, 0.95, "combustion CFD; large sweeping WS", mlp=3.0,
    ),
    _bench(
        "libquantum", "Lq", "spec",
        (_p(200_000, pattern="stream"),),
        0.25, 30.0, 0.85, "quantum simulation; pure streaming, ~100% miss",
        mlp=4.0,
    ),
    _bench(
        "mcf", "Mc", "spec",
        (_p(250_000, p_new=0.35, p_near=0.30, d_mean=6.0),),
        0.20, 50.0, 1.40, "network simplex; WS >> LLC, scattered deep reuse",
        mlp=1.3,
    ),
    _bench(
        "milc", "Mi", "spec",
        (_p(160_000, p_new=0.55, p_near=0.40, d_mean=2.0),),
        0.30, 40.0, 0.95, "lattice QCD; streaming with little reuse", mlp=3.0,
    ),
    _bench(
        "namd", "Nd", "spec",
        (_p(6_000, p_new=0.04, p_near=0.82, d_mean=2.0),),
        0.26, 400.0, 0.80, "molecular dynamics; small WS",
    ),
    _bench(
        "omnetpp", "Om", "spec",
        (_p(72_000, p_new=0.02, p_near=0.10, d_mean=4.0),),
        0.28, 90.0, 1.30, "discrete-event sim; non-LRU scattered reuse",
        mlp=1.2, nonlru=True,
    ),
    _bench(
        "perlbench", "Pe", "spec",
        (_p(12_000, p_new=0.06, p_near=0.72, d_mean=4.0),),
        0.30, 220.0, 1.10, "perl interpreter; medium WS",
    ),
    _bench(
        "povray", "Po", "spec",
        (_p(4_000, p_new=0.02, p_near=0.88, d_mean=1.8),),
        0.22, 700.0, 0.80, "ray tracer; tiny WS",
    ),
    _bench(
        "sjeng", "Si", "spec",
        (_p(16_000, p_new=0.06, p_near=0.70, d_mean=4.0),),
        0.24, 250.0, 1.10, "chess engine; medium hash tables",
    ),
    _bench(
        "soplex", "So", "spec",
        (_p(140_000, p_new=0.20, p_near=0.35, d_mean=6.0),),
        0.27, 70.0, 1.20, "LP solver; WS > LLC, scattered reuse", mlp=1.8,
    ),
    _bench(
        "sphinx", "Sp", "spec",
        (_p(26_000, p_new=0.08, p_near=0.72, d_mean=3.0),),
        0.25, 100.0, 1.00, "speech recognition; medium WS, good reuse",
    ),
    _bench(
        "tonto", "To", "spec",
        (_p(7_000, p_new=0.04, p_near=0.82, d_mean=2.2),),
        0.28, 350.0, 0.85, "quantum crystallography; small WS",
    ),
    _bench(
        "wrf", "Wr", "spec",
        (
            _p(24_000, p_new=0.10, p_near=0.65, d_mean=3.5, seg=20_000),
            _p(50_000, p_new=0.25, p_near=0.50, d_mean=3.0, seg=20_000),
        ),
        0.32, 130.0, 0.95, "weather model; phased stencil sweeps", mlp=2.0,
    ),
    _bench(
        "xalancbmk", "Xa", "spec",
        (
            _p(68_000, p_new=0.03, p_near=0.20, d_mean=5.0, seg=20_000),
            _p(52_000, p_new=0.02, p_near=0.10, d_mean=4.0, seg=10_000),
        ),
        0.26, 80.0, 1.25, "XSLT processor; non-LRU scattered reuse",
        mlp=1.3, nonlru=True,
    ),
    _bench(
        "zeusmp", "Ze", "spec",
        (_p(30_000, p_new=0.12, p_near=0.62, d_mean=3.0),),
        0.34, 120.0, 0.95, "astrophysical MHD; medium WS", mlp=2.0,
    ),
)

# ----------------------------------------------------------------------
# HPC proxy apps (shown in italics in Table 1)
# ----------------------------------------------------------------------

HPC_BENCHMARKS: tuple[BenchmarkProfile, ...] = (
    _bench(
        "amg2013", "Am", "hpc",
        (_p(200_000, p_new=0.20, p_near=0.30, d_mean=6.0),),
        0.30, 45.0, 1.05, "algebraic multigrid; large sparse matvec", mlp=2.5,
    ),
    _bench(
        "comd", "Co", "hpc",
        (_p(20_000, p_new=0.06, p_near=0.74, d_mean=3.0),),
        0.28, 150.0, 0.90, "classical MD proxy; neighbour lists, good locality",
    ),
    _bench(
        "lulesh", "Lu", "hpc",
        (
            _p(30_000, p_new=0.10, p_near=0.68, d_mean=3.0, seg=15_000),
            _p(60_000, p_new=0.25, p_near=0.50, d_mean=3.0, seg=15_000),
        ),
        0.35, 100.0, 0.95, "shock hydro proxy; phased stencil", mlp=2.0,
    ),
    _bench(
        "nekbone", "Ne", "hpc",
        (_p(10_000, p_new=0.04, p_near=0.82, d_mean=2.0),),
        0.25, 300.0, 0.80, "spectral-element proxy; small WS, compute bound",
    ),
    _bench(
        "xsbench", "Xb", "hpc",
        (_p(400_000, p_new=0.30, p_near=0.10, d_mean=2.0),),
        0.20, 25.0, 1.10, "Monte Carlo neutronics lookup; huge random WS",
        mlp=2.5,
    ),
)

ALL_BENCHMARKS: tuple[BenchmarkProfile, ...] = SPEC_BENCHMARKS + HPC_BENCHMARKS

_BY_NAME = {b.name: b for b in ALL_BENCHMARKS}
_BY_ACRONYM = {b.acronym: b for b in ALL_BENCHMARKS}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a profile by full name ("h264ref") or acronym ("H2")."""
    profile = _BY_NAME.get(name) or _BY_ACRONYM.get(name)
    if profile is None:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(_BY_NAME)}"
        )
    return profile
