"""A standalone true-LRU recency stack.

The cache sets embed their own recency list for speed, but this class gives
the recency semantics a small, independently-testable home (property tests
in ``tests/cache/test_lru.py`` check the permutation and monotonicity
invariants against it).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["LRUStack"]


class LRUStack:
    """An ordered stack of way indices, most-recently-used first.

    Position 0 is the MRU position; position ``size - 1`` is the LRU
    position.  This matches the paper's hit-histogram indexing, where
    ``nL2Hit[m][0]`` counts MRU hits.
    """

    __slots__ = ("_order",)

    def __init__(self, ways: int | Iterable[int]) -> None:
        if isinstance(ways, int):
            self._order = list(range(ways))
        else:
            self._order = list(ways)
            if sorted(self._order) != list(range(len(self._order))):
                raise ValueError("initial order must be a permutation of 0..n-1")

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[int]:
        return iter(self._order)

    def position_of(self, way: int) -> int:
        """Recency position of ``way`` (0 = MRU).  Raises if absent."""
        return self._order.index(way)

    def touch(self, way: int) -> int:
        """Promote ``way`` to MRU; returns its previous recency position."""
        pos = self._order.index(way)
        if pos:
            del self._order[pos]
            self._order.insert(0, way)
        return pos

    def lru(self) -> int:
        """The way currently at the LRU position."""
        return self._order[-1]

    def lru_among(self, allowed: set[int] | frozenset[int]) -> int:
        """The least-recently-used way among ``allowed``.

        Used for victim selection when some ways are power-gated.
        """
        for way in reversed(self._order):
            if way in allowed:
                return way
        raise ValueError("no allowed way present in the stack")

    def order(self) -> tuple[int, ...]:
        """The current recency order, MRU first."""
        return tuple(self._order)
