"""Per-line cache state shared between the cache model and refresh engines.

The hit/miss machinery lives in per-set Python lists (fast scalar path), but
the refresh engines need to answer vectorised questions at retention-period
boundaries ("how many valid lines are in active ways?", "which valid lines
were last touched in phase window w?").  :class:`LineState` holds that global
per-line state in NumPy arrays indexed by the *global line index*
``gidx = set_index * associativity + way``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LineState"]


class LineState:
    """Global per-line state arrays for one cache.

    Attributes
    ----------
    valid:
        ``bool`` array; ``valid[g]`` is True when line ``g`` holds data.
    dirty:
        ``bool`` array; modified-state of each line.
    last_window:
        ``int64`` array; index of the phase window in which the line was
        last *updated* (accessed or refreshed).  Used by the Refrint
        polyphase-valid policy.  ``-1`` for never-touched lines.
    active:
        ``bool`` array; whether the way holding this line is currently
        powered on.  Always all-True for caches that do not reconfigure.
    """

    __slots__ = ("num_sets", "associativity", "valid", "dirty", "last_window", "active")

    def __init__(self, num_sets: int, associativity: int) -> None:
        n = num_sets * associativity
        self.num_sets = num_sets
        self.associativity = associativity
        self.valid = np.zeros(n, dtype=bool)
        self.dirty = np.zeros(n, dtype=bool)
        self.last_window = np.full(n, -1, dtype=np.int64)
        self.active = np.ones(n, dtype=bool)

    # ------------------------------------------------------------------

    @property
    def num_lines(self) -> int:
        return self.valid.shape[0]

    def gidx(self, set_index: int, way: int) -> int:
        """Global line index of ``(set, way)``."""
        return set_index * self.associativity + way

    def valid_count(self) -> int:
        """Number of valid lines."""
        return int(self.valid.sum())

    def valid_active_count(self) -> int:
        """Number of valid lines residing in powered-on ways."""
        return int(np.count_nonzero(self.valid & self.active))

    def active_count(self) -> int:
        """Number of powered-on lines (valid or not)."""
        return int(np.count_nonzero(self.active))

    def active_fraction(self) -> float:
        """Fraction of the cache that is powered on (``F_A`` of Eq. 4)."""
        return self.active_count() / self.num_lines

    def set_module_active_ways(
        self, first_set: int, last_set: int, n_active: int
    ) -> None:
        """Mark ways ``[0, n_active)`` active for sets ``[first_set, last_set)``.

        Leader sets inside the range can be re-marked fully active afterwards
        with :meth:`set_set_fully_active`.
        """
        a = self.associativity
        pattern = np.arange(a) < n_active
        view = self.active[first_set * a : last_set * a]
        view[:] = np.tile(pattern, last_set - first_set)

    def set_set_fully_active(self, set_index: int) -> None:
        """Mark every way of one set active (used for leader sets)."""
        a = self.associativity
        self.active[set_index * a : (set_index + 1) * a] = True

    def snapshot(self) -> dict[str, int]:
        """Cheap summary used by tests and debugging."""
        return {
            "valid": self.valid_count(),
            "dirty": int(self.dirty.sum()),
            "active": self.active_count(),
        }
