"""Set-associative cache substrate (systems S1-S2 in DESIGN.md).

This package provides the generic cache machinery the rest of the
reproduction builds on: true-LRU set-associative caches with per-way enable
masks, dirty/valid bookkeeping backed by NumPy state arrays (shared with the
refresh engines), a two-level hierarchy for instruction-level traces, and a
writeback-buffer model.
"""

from repro.cache.block import LineState
from repro.cache.lru import LRUStack
from repro.cache.cacheset import CacheSet
from repro.cache.cache import AccessOutcome, CacheStats, SetAssociativeCache
from repro.cache.hierarchy import HierarchyResult, TwoLevelHierarchy
from repro.cache.mshr import WritebackBuffer

__all__ = [
    "AccessOutcome",
    "CacheSet",
    "CacheStats",
    "HierarchyResult",
    "LRUStack",
    "LineState",
    "SetAssociativeCache",
    "TwoLevelHierarchy",
    "WritebackBuffer",
]
