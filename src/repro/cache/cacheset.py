"""One cache set: tags, recency order, tag->way map, and the enable count.

Hot-path note (see the optimisation guide): :meth:`SetAssociativeCache.access
<repro.cache.cache.SetAssociativeCache.access>` manipulates the public list
attributes of this class directly instead of going through method calls --
the per-access cost budget is a couple of microseconds and Python call
overhead would dominate.  The methods here implement the *cold* paths
(fills, flushes, invariant checks) and give tests a tidy interface.

Every mutation of ``tags`` must keep ``tag_map`` (the O(1) lookup index)
in sync; the cold-path helpers below do so, and the handful of hot/cold
paths that write ``tags[way]`` directly (cache fill, reconfiguration
shrink, refresh-engine invalidations, prefill) update both structures in
place.  :meth:`check_invariants` asserts the mirror stays exact.
"""

from __future__ import annotations

from repro.cache.block import LineState

__all__ = ["CacheSet"]


class CacheSet:
    """State of a single set in a set-associative cache.

    Attributes
    ----------
    tags:
        ``tags[way]`` is the tag stored in that way, or ``None`` when the
        way holds no valid line.  ``tags[way] is None`` is the canonical
        validity test on the scalar path; the NumPy ``LineState.valid``
        array mirrors it for the vectorised refresh path.
    tag_map:
        ``tag_map[tag] -> way`` for every non-``None`` entry of ``tags``.
        This is the O(1) lookup index the hot path probes instead of a
        linear ``tags.index`` scan; a set never holds the same tag twice,
        so the mapping is exact.
    order:
        Way indices in recency order, most-recently-used first.
    n_active:
        Number of powered-on ways; ways ``[0, n_active)`` are usable.
        Leader sets keep ``n_active == associativity`` permanently.
    is_leader:
        True when this set is a profiling (leader) set of the embedded ATD.
    """

    __slots__ = (
        "index",
        "base",
        "tags",
        "tag_map",
        "order",
        "n_active",
        "is_leader",
    )

    def __init__(self, index: int, associativity: int, is_leader: bool = False) -> None:
        self.index = index
        #: First global line index of this set (``index * associativity``);
        #: precomputed so the hot path indexes the flat state arrays with
        #: one add instead of a multiply-add.
        self.base = index * associativity
        self.tags: list[int | None] = [None] * associativity
        self.tag_map: dict[int, int] = {}
        self.order: list[int] = list(range(associativity))
        self.n_active = associativity
        self.is_leader = is_leader

    # ------------------------------------------------------------------
    # Cold-path operations
    # ------------------------------------------------------------------

    def find(self, tag: int) -> int:
        """Way holding ``tag``, or ``-1``."""
        return self.tag_map.get(tag, -1)

    def victim_way(self) -> int:
        """Pick the fill victim among the enabled ways.

        Preference order: an enabled invalid way, else the least recently
        used enabled way.
        """
        n = self.n_active
        tags = self.tags
        for way in range(n):
            if tags[way] is None:
                return way
        for way in reversed(self.order):
            if way < n:
                return way
        raise RuntimeError("set has no enabled way")  # pragma: no cover

    def install(self, way: int, tag: int) -> None:
        """Place ``tag`` into ``way`` (cold-path fill; keeps the map)."""
        old = self.tags[way]
        if old is not None:
            del self.tag_map[old]
        self.tags[way] = tag
        self.tag_map[tag] = way

    def drop_way(self, way: int) -> int | None:
        """Clear ``way``'s tag (map kept in sync); returns the old tag."""
        tag = self.tags[way]
        if tag is not None:
            del self.tag_map[tag]
            self.tags[way] = None
        return tag

    def flush_way(self, way: int, state: LineState) -> tuple[int | None, bool]:
        """Invalidate ``way``; returns ``(evicted_tag, was_dirty)``.

        The caller is responsible for issuing a writeback when the line was
        dirty and for demoting the way in the recency order if desired.
        """
        tag = self.tags[way]
        if tag is None:
            return None, False
        g = state.gidx(self.index, way)
        was_dirty = bool(state.dirty[g])
        state.valid[g] = False
        state.dirty[g] = False
        self.tags[way] = None
        del self.tag_map[tag]
        return tag, was_dirty

    def resident_tags(self) -> list[int]:
        """Tags of all valid lines (test helper)."""
        return [t for t in self.tags if t is not None]

    # ------------------------------------------------------------------
    # Bulk export / import (batch classification kernel)
    # ------------------------------------------------------------------

    def tags_row(self, sentinel: int = -1) -> list[int]:
        """The ``tags`` list with ``None`` mapped to ``sentinel``.

        Line addresses are non-negative, so a negative sentinel is
        unambiguous; the batch kernel stacks these rows into the int64
        tag matrix it classifies against.
        """
        return [sentinel if t is None else t for t in self.tags]

    def set_order_checked(self, order: list[int]) -> None:
        """Replace the recency order after validating it is a permutation.

        The batch kernel reconstructs recency orders from its timestamp
        matrix at buffer retirement; a malformed row here would silently
        corrupt every later victim choice, so reject anything that is not
        a permutation of the way indices.
        """
        if sorted(order) != list(range(len(self.tags))):
            raise AssertionError(
                f"set {self.index}: imported recency order {order!r} is "
                f"not a permutation of {len(self.tags)} ways"
            )
        self.order = order

    def check_invariants(self, state: LineState) -> None:
        """Raise AssertionError when internal state is inconsistent."""
        a = len(self.tags)
        assert sorted(self.order) == list(range(a)), "order must be a permutation"
        assert 1 <= self.n_active <= a, "active way count out of range"
        assert self.tag_map == {
            tag: way for way, tag in enumerate(self.tags) if tag is not None
        }, f"tag_map out of sync at set {self.index}"
        for way, tag in enumerate(self.tags):
            g = state.gidx(self.index, way)
            assert (tag is not None) == bool(
                state.valid[g]
            ), f"valid mirror out of sync at set {self.index} way {way}"
            if tag is None:
                assert not state.dirty[g], "invalid line cannot be dirty"
            if way >= self.n_active and not self.is_leader:
                assert tag is None, "disabled way must not hold a line"
