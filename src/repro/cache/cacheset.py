"""One cache set: tags, recency order, and the per-way enable count.

Hot-path note (see the optimisation guide): :meth:`SetAssociativeCache.access
<repro.cache.cache.SetAssociativeCache.access>` manipulates the public list
attributes of this class directly instead of going through method calls --
the per-access cost budget is a couple of microseconds and Python call
overhead would dominate.  The methods here implement the *cold* paths
(fills, flushes, invariant checks) and give tests a tidy interface.
"""

from __future__ import annotations

from repro.cache.block import LineState

__all__ = ["CacheSet"]


class CacheSet:
    """State of a single set in a set-associative cache.

    Attributes
    ----------
    tags:
        ``tags[way]`` is the tag stored in that way, or ``None`` when the
        way holds no valid line.  ``tags[way] is None`` is the canonical
        validity test on the scalar path; the NumPy ``LineState.valid``
        array mirrors it for the vectorised refresh path.
    order:
        Way indices in recency order, most-recently-used first.
    n_active:
        Number of powered-on ways; ways ``[0, n_active)`` are usable.
        Leader sets keep ``n_active == associativity`` permanently.
    is_leader:
        True when this set is a profiling (leader) set of the embedded ATD.
    """

    __slots__ = ("index", "tags", "order", "n_active", "is_leader")

    def __init__(self, index: int, associativity: int, is_leader: bool = False) -> None:
        self.index = index
        self.tags: list[int | None] = [None] * associativity
        self.order: list[int] = list(range(associativity))
        self.n_active = associativity
        self.is_leader = is_leader

    # ------------------------------------------------------------------
    # Cold-path operations
    # ------------------------------------------------------------------

    def find(self, tag: int) -> int:
        """Way holding ``tag``, or ``-1``."""
        try:
            return self.tags.index(tag)
        except ValueError:
            return -1

    def victim_way(self) -> int:
        """Pick the fill victim among the enabled ways.

        Preference order: an enabled invalid way, else the least recently
        used enabled way.
        """
        n = self.n_active
        tags = self.tags
        for way in range(n):
            if tags[way] is None:
                return way
        for way in reversed(self.order):
            if way < n:
                return way
        raise RuntimeError("set has no enabled way")  # pragma: no cover

    def flush_way(self, way: int, state: LineState) -> tuple[int | None, bool]:
        """Invalidate ``way``; returns ``(evicted_tag, was_dirty)``.

        The caller is responsible for issuing a writeback when the line was
        dirty and for demoting the way in the recency order if desired.
        """
        tag = self.tags[way]
        if tag is None:
            return None, False
        g = state.gidx(self.index, way)
        was_dirty = bool(state.dirty[g])
        state.valid[g] = False
        state.dirty[g] = False
        self.tags[way] = None
        return tag, was_dirty

    def resident_tags(self) -> list[int]:
        """Tags of all valid lines (test helper)."""
        return [t for t in self.tags if t is not None]

    def check_invariants(self, state: LineState) -> None:
        """Raise AssertionError when internal state is inconsistent."""
        a = len(self.tags)
        assert sorted(self.order) == list(range(a)), "order must be a permutation"
        assert 1 <= self.n_active <= a, "active way count out of range"
        for way, tag in enumerate(self.tags):
            g = state.gidx(self.index, way)
            assert (tag is not None) == bool(
                state.valid[g]
            ), f"valid mirror out of sync at set {self.index} way {way}"
            if tag is None:
                assert not state.dirty[g], "invalid line cannot be dirty"
            if way >= self.n_active and not self.is_leader:
                assert tag is None, "disabled way must not hold a line"
