"""The set-associative cache model (system S1).

Implements a true-LRU, writeback, write-allocate cache with per-way power
gating.  Lines live only in enabled ways: the reconfiguration controller
flushes a way before disabling it, so the lookup path never needs to mask
disabled ways.

Tag storage note: each way stores the *full line address* rather than the
tag bits above the index.  Functionally identical (address = tag || index),
it keeps lookups a single comparison and -- crucially -- decouples the
stored state from the set-index width, which lets the selective-sets
controller change the number of active sets (``active_set_mask``) without
re-interpreting every stored tag.

The hot path (:meth:`SetAssociativeCache.access`) is written as straight-line
Python -- per the profiling-first guidance, the per-access budget is ~1-2 us
and attribute lookups / function calls are the dominant cost, so locals are
bound once and the per-set state is manipulated in place.  Lookup is O(1):
each set maintains a ``tag -> way`` dict alongside the ``tags`` list (the
list remains the canonical way-indexed view; the dict is the index), so the
hit path costs one dict probe instead of a linear ``tags.index`` scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain

import numpy as np

from repro.cache.block import LineState
from repro.cache.cacheset import CacheSet
from repro.config import CacheGeometry

__all__ = ["AccessOutcome", "CacheStats", "SetAssociativeCache"]


@dataclass
class AccessOutcome:
    """Result of a single cache access (cold-path convenience wrapper)."""

    hit: bool
    #: Recency position of the hit (0 = MRU), or -1 on a miss.
    position: int
    #: Line address written back due to a dirty eviction, or -1.
    writeback_addr: int


@dataclass
class CacheStats:
    """Monotonic counters; interval deltas are taken by the runner."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    #: Hits served from drowsy (gated, data-retaining) ways.
    drowsy_hits: int = 0
    #: Hits broken down by recency position (whole cache, all sets).
    hits_by_position: list[int] = field(default_factory=list)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class SetAssociativeCache:
    """A single cache level with LRU replacement and way gating.

    Parameters
    ----------
    geometry:
        Size / associativity / line size / latency bundle.
    name:
        Label used in reports ("L1D", "L2", ...).
    leader_every:
        When positive, every ``leader_every``-th set (set index divisible by
        it) is marked as a leader set for the embedded ATD (Section 3.2).
        Leader sets always keep every way enabled.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        name: str = "cache",
        leader_every: int = 0,
    ) -> None:
        self.geometry = geometry
        self.name = name
        s = geometry.num_sets
        a = geometry.associativity
        self.num_sets = s
        self.associativity = a
        self.set_mask = s - 1
        #: Index mask actually used by lookups; the selective-sets
        #: controller narrows it to a power-of-two subset of the sets.
        self.active_set_mask = s - 1
        self.set_bits = geometry.set_index_bits
        self.sets: list[CacheSet] = [
            CacheSet(i, a, is_leader=(leader_every > 0 and i % leader_every == 0))
            for i in range(s)
        ]
        self.state = LineState(s, a)
        self.stats = CacheStats(hits_by_position=[0] * a)
        # Optional profiling hook installed by the ESTEEM controller:
        # module_of_set[s] -> module index, profile_hist[m][pos] += 1 on
        # leader-set hits.  None when no profiler is attached.
        self.module_of_set: list[int] | None = None
        self.profile_hist: list[list[int]] | None = None
        # Optional per-line write counters (NVM endurance studies install
        # a NumPy array here; None keeps the hot path free of the cost).
        self.write_counts = None
        #: Set by the hot path when the last hit came from a drowsy way;
        #: the timing loop consumes and clears it (wake-up penalty).
        self.drowsy_flag = False

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def set_index(self, line_addr: int) -> int:
        return line_addr & self.set_mask

    def tag_of(self, line_addr: int) -> int:
        return line_addr >> self.set_bits

    def line_addr(self, set_index: int, tag: int) -> int:
        return (tag << self.set_bits) | set_index

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------

    def access(self, line_addr: int, is_write: bool, window: int = 0) -> tuple:
        """Perform one demand access.

        Parameters
        ----------
        line_addr:
            Cache-line address (byte address >> log2(line size)).
        is_write:
            Store vs load; stores mark the line dirty.
        window:
            Current refresh phase-window index (an access counts as an
            implicit refresh for the polyphase bookkeeping).

        Returns
        -------
        tuple
            ``(hit, position, writeback_addr)`` where ``position`` is the
            recency position of the hit (0 = MRU, -1 on miss) and
            ``writeback_addr`` is the line address of a dirty eviction
            (-1 when nothing was written back).
        """
        stats = self.stats
        cset = self.sets[line_addr & self.active_set_mask]
        tags = cset.tags
        tag_map = cset.tag_map
        order = cset.order
        state = self.state
        a = self.associativity

        way = tag_map.get(line_addr, -1)

        if way >= 0:
            # Hit: promote to MRU, record recency position.  A hit in a
            # gated way is only possible in drowsy mode (off-mode flushes).
            if way >= cset.n_active and not cset.is_leader:
                stats.drowsy_hits += 1
                self.drowsy_flag = True
            if order[0] == way:
                pos = 0
            else:
                pos = order.index(way)
                del order[pos]
                order.insert(0, way)
            stats.hits += 1
            stats.hits_by_position[pos] += 1
            g = cset.base + way
            if is_write:
                state.dirty[g] = True
                if self.write_counts is not None:
                    self.write_counts[g] += 1
            state.last_window[g] = window
            hist = self.profile_hist
            if hist is not None and cset.is_leader:
                hist[self.module_of_set[cset.index]][pos] += 1
            return (True, pos, -1)

        # Miss: pick a victim among the enabled ways.  ``len(tag_map)``
        # counts every resident line, so a full set (the steady state)
        # skips the invalid-way scan entirely and evicts the recency tail.
        stats.misses += 1
        n = cset.n_active
        need_promote = True
        if n == a:
            if len(tag_map) == a:
                # Full set: the victim is the LRU tail; its recency
                # position is known, so promote without a scan.
                victim = order[-1]
                del order[-1]
                order.insert(0, victim)
                need_promote = False
            else:
                victim = tags.index(None)
        else:
            head = tags[:n]
            if None in head:
                victim = head.index(None)
            else:
                victim = -1
                for w in reversed(order):
                    if w < n:
                        victim = w
                        break
        if victim < 0:
            # No enabled way can accept the fill (n_active == 0 and no
            # invalid way): silently using ``-1`` would corrupt the
            # neighbouring set's last line via ``cset.base - 1``.
            raise RuntimeError(
                f"{self.name}: set {cset.index} has no enabled way to fill "
                f"(n_active={n}, associativity={a})"
            )
        g = cset.base + victim
        wb_addr = -1
        old_tag = tags[victim]
        if old_tag is not None:
            del tag_map[old_tag]
            if state.dirty[g]:
                wb_addr = old_tag
                stats.writebacks += 1
        # Fill.
        tags[victim] = line_addr
        tag_map[line_addr] = victim
        state.valid[g] = True
        state.dirty[g] = is_write
        if is_write and self.write_counts is not None:
            self.write_counts[g] += 1
        state.last_window[g] = window
        if need_promote:
            pos = order.index(victim)
            if pos:
                del order[pos]
                order.insert(0, victim)
        return (False, -1, wb_addr)

    # ------------------------------------------------------------------
    # Cold paths
    # ------------------------------------------------------------------

    def access_outcome(
        self, line_addr: int, is_write: bool, window: int = 0
    ) -> AccessOutcome:
        """Typed wrapper around :meth:`access` for tests and examples."""
        hit, pos, wb = self.access(line_addr, is_write, window)
        return AccessOutcome(hit=hit, position=pos, writeback_addr=wb)

    def contains(self, line_addr: int) -> bool:
        """Whether the line is resident (no LRU update)."""
        cset = self.sets[line_addr & self.active_set_mask]
        return line_addr in cset.tag_map

    def probe_position(self, line_addr: int) -> int:
        """Recency position of a resident line without promoting it; -1 if absent."""
        cset = self.sets[line_addr & self.active_set_mask]
        way = cset.tag_map.get(line_addr, -1)
        if way < 0:
            return -1
        return cset.order.index(way)

    def invalidate_line(self, g: int) -> tuple[int | None, bool]:
        """Drop the line at global index ``g`` (tag map kept in sync).

        Returns ``(evicted_tag, was_dirty)``.  This is the shared
        uncorrectable-loss path used by the ECC-extended refresh engine
        and the fault injector: the line's tag is removed from its set,
        the valid/dirty mirrors are cleared, and the phase-window stamp is
        reset so polyphase refresh policies stop tracking it.  The way's
        recency position is left alone -- an invalid way already wins
        victim arbitration.
        """
        a = self.associativity
        cset = self.sets[g // a]
        tag = cset.drop_way(g % a)
        state = self.state
        was_dirty = bool(state.dirty[g])
        state.valid[g] = False
        state.dirty[g] = False
        state.last_window[g] = -1
        return tag, was_dirty

    def invalidate_all(self) -> None:
        """Drop every line (no writebacks; test helper)."""
        for cset in self.sets:
            for way in range(self.associativity):
                cset.tags[way] = None
            cset.tag_map.clear()
        self.state.valid[:] = False
        self.state.dirty[:] = False
        self.state.last_window[:] = -1

    def leader_sets(self) -> list[int]:
        return [c.index for c in self.sets if c.is_leader]

    # ------------------------------------------------------------------
    # Bulk tag/recency export-import (batch classification kernel)
    # ------------------------------------------------------------------

    def export_batch_state(self, set_indices) -> tuple:
        """Snapshot per-set tag/recency/dirty state as dense matrices.

        Parameters
        ----------
        set_indices:
            int64 array of distinct set indices (ascending), typically the
            sets touched by one classification batch.

        Returns
        -------
        tuple
            ``(tags_mat, ts0_mat, dirty_mat)``, each of shape
            ``(len(set_indices), associativity)``:

            * ``tags_mat`` -- stored line addresses, ``-1`` for invalid
              ways (see :meth:`CacheSet.tags_row
              <repro.cache.cacheset.CacheSet.tags_row>`);
            * ``ts0_mat`` -- synthetic last-access timestamps encoding the
              current recency order: way at recency position ``p`` gets
              ``-(1 + p)``, so MRU is the largest and every value is
              distinct.  Real (non-negative) record indices written over
              these preserve relative order under an ``argsort``;
            * ``dirty_mat`` -- the dirty bits (a copy; the kernel tracks
              eviction-time dirtiness without touching live state).

        Raises ``AssertionError`` if the tag matrix disagrees with the
        ``LineState.valid`` mirror -- the kernel classifies against this
        export, so a desync here must fail loudly, not corrupt results.
        """
        sets = self.sets
        a = self.associativity
        rows = np.asarray(set_indices, dtype=np.int64)
        t_count = rows.shape[0]
        touched = [sets[s] for s in rows.tolist()]
        # Tag matrix from the per-set tag maps: one C-level fromiter pass
        # over chained dict iterators instead of a Python list per set.
        n_res = np.fromiter(
            (len(c.tag_map) for c in touched), np.int64, count=t_count
        )
        total = int(n_res.sum())
        res_tags = np.fromiter(
            chain.from_iterable(c.tag_map for c in touched),
            np.int64,
            count=total,
        )
        res_ways = np.fromiter(
            chain.from_iterable(c.tag_map.values() for c in touched),
            np.int64,
            count=total,
        )
        tags_mat = np.full((t_count, a), -1, dtype=np.int64)
        tags_mat[np.repeat(np.arange(t_count), n_res), res_ways] = res_tags
        # Recency seeds from the order lists, same single-pass trick.
        order_mat = np.fromiter(
            chain.from_iterable(c.order for c in touched),
            np.int64,
            count=t_count * a,
        ).reshape(t_count, a)
        ts0_mat = np.empty((t_count, a), dtype=np.int32)
        np.put_along_axis(
            ts0_mat,
            order_mat,
            -(1 + np.arange(a, dtype=np.int32))[None, :],
            axis=1,
        )
        valid_mat = self.state.valid.reshape(self.num_sets, a)[rows]
        if ((tags_mat != -1) != valid_mat).any():
            raise AssertionError(
                f"{self.name}: tag/valid mirror desync in batch export"
            )
        dirty_mat = self.state.dirty.reshape(self.num_sets, a)[rows].copy()
        return tags_mat, ts0_mat, dirty_mat

    def import_recency_orders(self, set_indices, order_mat) -> None:
        """Install recency orders reconstructed by the batch kernel.

        ``order_mat`` holds one way-permutation per row of
        ``set_indices`` (most-recently-used first).  Every row is
        validated as a permutation in one vectorised check before any set
        is touched, so a bad reconstruction cannot half-apply.
        """
        a = self.associativity
        order_mat = np.asarray(order_mat)
        srt = np.sort(order_mat, axis=1)
        if (srt != np.arange(a, dtype=order_mat.dtype)[None, :]).any():
            bad = int(
                (srt != np.arange(a, dtype=order_mat.dtype)[None, :])
                .any(axis=1)
                .argmax()
            )
            raise AssertionError(
                f"{self.name}: imported recency row for set "
                f"{int(np.asarray(set_indices)[bad])} is not a "
                f"permutation of {a} ways"
            )
        sets = self.sets
        rows = order_mat.tolist()
        for s, row in zip(
            set_indices.tolist()
            if hasattr(set_indices, "tolist")
            else list(set_indices),
            rows,
        ):
            sets[s].order = row

    # ------------------------------------------------------------------
    # Warm-image snapshot / restore (fast construction path)
    # ------------------------------------------------------------------

    def snapshot_image(self) -> tuple:
        """Capture resident lines + line state for :meth:`from_image`.

        Only meaningful for a cache in its post-construction steady state
        (all ways active, untouched LRU order, no profiling hooks): the
        image stores just the per-set tag state and the line-state
        arrays, which is everything a freshly prefilled cache has.
        """
        state = self.state
        return (
            [cset.tags.copy() for cset in self.sets],
            [cset.tag_map.copy() for cset in self.sets],
            state.valid.copy(),
            state.dirty.copy(),
            state.last_window.copy(),
        )

    @classmethod
    def from_image(
        cls,
        geometry: CacheGeometry,
        image: tuple,
        name: str = "cache",
    ) -> "SetAssociativeCache":
        """Rebuild a cache from :meth:`snapshot_image` output.

        Cloning per-set lists/dicts is several times cheaper than
        re-running construction plus prefill, which matters when a sweep
        builds many systems over the same geometry.  The clone shares
        nothing mutable with the image.
        """
        self = cls.__new__(cls)
        self.geometry = geometry
        self.name = name
        s = geometry.num_sets
        a = geometry.associativity
        self.num_sets = s
        self.associativity = a
        self.set_mask = s - 1
        self.active_set_mask = s - 1
        self.set_bits = geometry.set_index_bits
        tags_rows, maps, valid, dirty, last_window = image
        order_proto = list(range(a))
        proto_copy = order_proto.copy
        sets = []
        append = sets.append
        new_set = CacheSet.__new__
        base = 0
        index = 0
        for row, tag_map in zip(tags_rows, maps):
            cset = new_set(CacheSet)
            cset.index = index
            cset.base = base
            cset.tags = row.copy()
            cset.tag_map = tag_map.copy()
            cset.order = proto_copy()
            cset.n_active = a
            cset.is_leader = False
            append(cset)
            index += 1
            base += a
        self.sets = sets
        state = LineState(s, a)
        state.valid = valid.copy()
        state.dirty = dirty.copy()
        state.last_window = last_window.copy()
        self.state = state
        self.stats = CacheStats(hits_by_position=[0] * a)
        self.module_of_set = None
        self.profile_hist = None
        self.write_counts = None
        self.drowsy_flag = False
        return self

    def check_invariants(self) -> None:
        """Full-state consistency check (used by property tests)."""
        for cset in self.sets:
            cset.check_invariants(self.state)

    def resident_lines(self) -> list[int]:
        """All resident line addresses (test helper)."""
        out = []
        for cset in self.sets:
            for tag in cset.tags:
                if tag is not None:
                    out.append(tag)
        return out
