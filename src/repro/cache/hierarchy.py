"""Two-level cache hierarchy (system S2) for instruction-level traces.

The headline experiments drive the L2 with post-L1-filtered traces (see
DESIGN.md section 1), but the full hierarchy is part of the substrate: the
``full`` trace mode and several examples route every load/store through a
private L1 first, with L1 writebacks installed into the shared L2.

The hierarchy is non-inclusive / writeback / write-allocate at both levels,
matching the simple latency model of the paper's platform (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cache import SetAssociativeCache
from repro.config import CacheGeometry

__all__ = ["HierarchyResult", "TwoLevelHierarchy"]


@dataclass
class HierarchyResult:
    """Where a single access was served and what traffic it generated."""

    l1_hit: bool
    #: None when the access never reached the L2.
    l2_hit: bool | None
    #: Line addresses written back from L2 to memory (dirty L2 evictions).
    #: Can hold up to two entries when an L1-writeback install and the
    #: demand fill each evicted a dirty L2 line.
    memory_writebacks: tuple[int, ...]
    #: Whether an L1 dirty eviction was installed into the L2.
    l1_writeback_to_l2: bool

    @property
    def served_by(self) -> str:
        """Which level satisfied the access: "L1", "L2" or "MEM"."""
        if self.l1_hit:
            return "L1"
        return "L2" if self.l2_hit else "MEM"


class TwoLevelHierarchy:
    """A private L1 in front of a (possibly shared) L2.

    Parameters
    ----------
    l1_geometry:
        Geometry of the private first-level cache.
    l2:
        The shared second-level cache instance (owned by the caller so that
        several cores can share one L2).
    core_id:
        Used only for naming.
    """

    def __init__(
        self,
        l1_geometry: CacheGeometry,
        l2: SetAssociativeCache,
        core_id: int = 0,
    ) -> None:
        self.l1 = SetAssociativeCache(l1_geometry, name=f"L1D{core_id}")
        self.l2 = l2
        self.core_id = core_id

    def access(self, line_addr: int, is_write: bool, window: int = 0) -> HierarchyResult:
        """Route one demand access through L1 then (on miss) L2.

        An L1 dirty eviction becomes a write access to the L2 (writeback,
        write-allocate); a dirty L2 eviction surfaces as ``memory_writeback``
        so the caller can charge memory traffic.
        """
        l1_hit, _pos, l1_wb = self.l1.access(line_addr, is_write, window)
        if l1_hit:
            return HierarchyResult(
                l1_hit=True,
                l2_hit=None,
                memory_writebacks=(),
                l1_writeback_to_l2=False,
            )
        mem_wbs: list[int] = []
        l1_wrote_back = False
        if l1_wb >= 0:
            # Install the evicted dirty L1 line into the L2 as a write.
            l1_wrote_back = True
            _h, _p, wb = self.l2.access(l1_wb, True, window)
            if wb >= 0:
                mem_wbs.append(wb)
        l2_hit, _pos2, wb2 = self.l2.access(line_addr, is_write, window)
        if wb2 >= 0:
            mem_wbs.append(wb2)
        return HierarchyResult(
            l1_hit=False,
            l2_hit=l2_hit,
            memory_writebacks=tuple(mem_wbs),
            l1_writeback_to_l2=l1_wrote_back,
        )
