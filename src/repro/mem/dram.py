"""Main-memory latency / bandwidth / queue model (system S3).

The paper's platform models main memory as a 220-cycle latency with
"memory queue contention also modeled" and a bandwidth of 10 GB/s
(single-core) or 15 GB/s (dual-core) (Section 6.1).

We model the memory channel as a single FIFO server: each line transfer
occupies the channel for ``line_bytes / bandwidth`` seconds, arrivals queue
behind it, and a demand read pays ``fixed latency + queueing delay``.
Writebacks are *posted* -- they occupy channel bandwidth (and therefore
delay later reads) but do not stall the issuing core, which matches the
paper's note that write-back buffers absorb flush traffic (Section 4).
"""

from __future__ import annotations

from repro.config import MemoryConfig

__all__ = ["MainMemory"]


class MainMemory:
    """Fixed-latency memory behind a bandwidth-limited FIFO channel."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.service_cycles = config.service_cycles
        self.latency_cycles = config.latency_cycles
        self._next_free = 0.0
        self.reads = 0
        self.writes = 0
        self._delta_accesses = 0
        self.total_queue_wait = 0.0

    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        """Total line transfers (``A_MM`` in the energy model, Eq. 7)."""
        return self.reads + self.writes

    def read(self, now: float) -> float:
        """Fetch one line at cycle ``now``; returns the total read latency."""
        wait = self._enqueue(now)
        self.reads += 1
        self._delta_accesses += 1
        return self.latency_cycles + wait

    def write(self, now: float) -> float:
        """Post one writeback at cycle ``now``; returns 0 (non-blocking)."""
        self._enqueue(now)
        self.writes += 1
        self._delta_accesses += 1
        return 0.0

    def write_many(self, now: float, count: int) -> None:
        """Post ``count`` writebacks at once (refresh-engine flush bursts)."""
        if count <= 0:
            return
        start = self._next_free if self._next_free > now else now
        self._next_free = start + count * self.service_cycles
        self.writes += count
        self._delta_accesses += count

    def take_access_delta(self) -> int:
        """Accesses since the last call (interval energy accounting)."""
        delta = self._delta_accesses
        self._delta_accesses = 0
        return delta

    def utilization(self, elapsed_cycles: float) -> float:
        """Average channel utilisation over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.accesses * self.service_cycles / elapsed_cycles)

    # ------------------------------------------------------------------

    def _enqueue(self, now: float) -> float:
        start = self._next_free if self._next_free > now else now
        wait = start - now
        self._next_free = start + self.service_cycles
        self.total_queue_wait += wait
        return wait
