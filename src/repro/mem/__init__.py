"""Main-memory substrate (system S3 in DESIGN.md)."""

from repro.mem.dram import MainMemory

__all__ = ["MainMemory"]
