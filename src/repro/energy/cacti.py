"""CACTI-lite: an analytical stand-in for the CACTI 5.3 lookups.

The paper obtains its per-size energy constants from CACTI 5.3 (Table 2).
For sizes outside the table (used by tests, sweeps, and anyone configuring
a non-paper geometry) we fit a log-log power law through the table:

* Dynamic energy per access grows sublinearly with capacity (longer wires,
  wider H-trees): ``E_dyn ~ size^a``.
* Leakage power grows close to linearly with capacity: ``P_leak ~ size^b``.

Inside the table's range the model interpolates piecewise between adjacent
table points (so table sizes are reproduced exactly); outside, it
extrapolates with the end-segment slope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.energy.params import EDRAM_ENERGY_TABLE

__all__ = ["CactiLite"]


@dataclass(frozen=True)
class CactiLite:
    """Piecewise log-log interpolation through (size, E_dyn, P_leak) points."""

    sizes: tuple[int, ...]
    dyn_j: tuple[float, ...]
    leak_w: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) < 2:
            raise ValueError("need at least two calibration points")
        if not (len(self.sizes) == len(self.dyn_j) == len(self.leak_w)):
            raise ValueError("calibration columns must align")
        if list(self.sizes) != sorted(self.sizes):
            raise ValueError("sizes must be ascending")

    @classmethod
    def from_table(cls) -> "CactiLite":
        """Model calibrated on the paper's Table 2."""
        sizes = tuple(sorted(EDRAM_ENERGY_TABLE))
        return cls(
            sizes=sizes,
            dyn_j=tuple(EDRAM_ENERGY_TABLE[s][0] for s in sizes),
            leak_w=tuple(EDRAM_ENERGY_TABLE[s][1] for s in sizes),
        )

    # ------------------------------------------------------------------

    def _interp(self, size_bytes: int, values: tuple[float, ...]) -> float:
        if size_bytes <= 0:
            raise ValueError("cache size must be positive")
        sizes = self.sizes
        x = math.log(size_bytes)
        xs = [math.log(s) for s in sizes]
        ys = [math.log(v) for v in values]
        # Clamp to the end segments for extrapolation.
        if x <= xs[0]:
            lo, hi = 0, 1
        elif x >= xs[-1]:
            lo, hi = len(xs) - 2, len(xs) - 1
        else:
            hi = next(i for i, xv in enumerate(xs) if xv >= x)
            lo = hi - 1
        slope = (ys[hi] - ys[lo]) / (xs[hi] - xs[lo])
        return math.exp(ys[lo] + slope * (x - xs[lo]))

    def dynamic_energy_j(self, size_bytes: int) -> float:
        """E_dyn per access (joules) for an arbitrary capacity."""
        return self._interp(size_bytes, self.dyn_j)

    def leakage_power_w(self, size_bytes: int) -> float:
        """P_leak (watts) for an arbitrary capacity."""
        return self._interp(size_bytes, self.leak_w)

    def scaling_exponents(self) -> tuple[float, float]:
        """Average log-log slopes (dynamic, leakage) across the table."""
        xs = [math.log(s) for s in self.sizes]

        def avg_slope(values: tuple[float, ...]) -> float:
            ys = [math.log(v) for v in values]
            return (ys[-1] - ys[0]) / (xs[-1] - xs[0])

        return avg_slope(self.dyn_j), avg_slope(self.leak_w)
