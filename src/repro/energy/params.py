"""Energy constants from the paper (Section 6.3, Table 2).

Table 2 gives CACTI 5.3 values at 32 nm for a 16-way eDRAM cache:

======  ==================  =================
Size    E_dyn (nJ/access)   P_leak (Watts)
======  ==================  =================
2 MB    0.186               0.096
4 MB    0.212               0.116
8 MB    0.282               0.280
16 MB   0.370               0.456
32 MB   0.467               1.056
======  ==================  =================

Main memory: ``E_dyn = 70 nJ/access``, ``P_leak = 0.18 W``.  A cache-block
power-state transition costs ``E_chi = 2 pJ``.

Sanity anchor: with these constants a periodically-refreshed 4 MB cache at
50 us retention spends ``65536 lines / 50 us * 0.212 nJ = 0.278 W`` on
refresh against 0.116 W of leakage -- refresh is ~70% of (refresh+leakage)
energy, exactly the fraction the paper quotes from Agrawal et al. [4].
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "EDRAM_ENERGY_TABLE",
    "EnergyParams",
    "MEMORY_DYNAMIC_ENERGY_J",
    "MEMORY_LEAKAGE_W",
    "TRANSITION_ENERGY_J",
]

#: Table 2: cache size in bytes -> (dynamic energy J/access, leakage W).
EDRAM_ENERGY_TABLE: dict[int, tuple[float, float]] = {
    2 * 1024 * 1024: (0.186e-9, 0.096),
    4 * 1024 * 1024: (0.212e-9, 0.116),
    8 * 1024 * 1024: (0.282e-9, 0.280),
    16 * 1024 * 1024: (0.370e-9, 0.456),
    32 * 1024 * 1024: (0.467e-9, 1.056),
}

#: Main-memory dynamic energy per access (70 nJ).
MEMORY_DYNAMIC_ENERGY_J: float = 70e-9

#: Main-memory leakage power (0.18 W).
MEMORY_LEAKAGE_W: float = 0.18

#: Energy of one cache-block power-state transition, E_chi (2 pJ).
TRANSITION_ENERGY_J: float = 2e-12


@dataclass(frozen=True)
class EnergyParams:
    """The complete constant set consumed by the energy equations."""

    #: E_dyn^L2, joules per L2 access.
    l2_dynamic_j: float
    #: P_leak^L2 at full power, watts.
    l2_leakage_w: float
    #: E_dyn^MM, joules per memory access.
    mem_dynamic_j: float = MEMORY_DYNAMIC_ENERGY_J
    #: P_leak^MM, watts.
    mem_leakage_w: float = MEMORY_LEAKAGE_W
    #: E_chi, joules per block power-state transition.
    transition_j: float = TRANSITION_ENERGY_J

    def __post_init__(self) -> None:
        for field_name in (
            "l2_dynamic_j",
            "l2_leakage_w",
            "mem_dynamic_j",
            "mem_leakage_w",
            "transition_j",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")

    @classmethod
    def for_cache_size(cls, size_bytes: int) -> "EnergyParams":
        """Parameters for a Table 2 size; interpolates otherwise.

        Sizes present in Table 2 are returned exactly; other sizes fall
        back to the CACTI-lite log-log interpolation model.
        """
        entry = EDRAM_ENERGY_TABLE.get(size_bytes)
        if entry is not None:
            return cls(l2_dynamic_j=entry[0], l2_leakage_w=entry[1])
        from repro.energy.cacti import CactiLite

        model = CactiLite.from_table()
        return cls(
            l2_dynamic_j=model.dynamic_energy_j(size_bytes),
            l2_leakage_w=model.leakage_power_w(size_bytes),
        )
