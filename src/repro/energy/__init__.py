"""Energy modelling (system S14 in DESIGN.md).

Table 2's CACTI-derived eDRAM constants, a CACTI-lite scaling model for
off-table sizes, and the paper's energy equations (1)-(8).
"""

from repro.energy.params import (
    EDRAM_ENERGY_TABLE,
    EnergyParams,
    MEMORY_DYNAMIC_ENERGY_J,
    MEMORY_LEAKAGE_W,
    TRANSITION_ENERGY_J,
)
from repro.energy.cacti import CactiLite
from repro.energy.model import (
    EnergyAccumulator,
    EnergyBreakdown,
    IntervalEnergyInputs,
    counter_overhead_percent,
)

__all__ = [
    "CactiLite",
    "EDRAM_ENERGY_TABLE",
    "EnergyAccumulator",
    "EnergyBreakdown",
    "EnergyParams",
    "IntervalEnergyInputs",
    "MEMORY_DYNAMIC_ENERGY_J",
    "MEMORY_LEAKAGE_W",
    "TRANSITION_ENERGY_J",
    "counter_overhead_percent",
]
