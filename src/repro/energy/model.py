"""The paper's energy equations (Section 6.3, Eqs. 2-8; Section 5, Eq. 1).

Energy is accounted per interval and summed:

.. math::

    E       &= E_{L2} + E_{MM} + E_{Algo}              \\quad (2) \\\\
    E_{L2}  &= LE_{L2} + DE_{L2} + RE_{L2}             \\quad (3) \\\\
    LE_{L2} &= P^{leak}_{L2} \\cdot F_A \\cdot T       \\quad (4) \\\\
    DE_{L2} &= E^{dyn}_{L2} (2 M_{L2} + H_{L2})        \\quad (5) \\\\
    RE_{L2} &= N_R \\cdot E^{dyn}_{L2}                 \\quad (6) \\\\
    E_{MM}  &= P^{leak}_{MM} T + E^{dyn}_{MM} A_{MM}   \\quad (7) \\\\
    E_{Algo}&= E_\\chi \\cdot N_L                      \\quad (8)

For the baseline and RPV, ``F_A = 1`` and ``E_Algo = 0`` (Section 6.3).
An L2 miss costs twice the dynamic energy of a hit (Eq. 5), refreshing a
line costs the same energy as accessing it (Eq. 6), and L2 leakage scales
with the active fraction of the cache (Eq. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.config import LINE_SIZE_BYTES, TAG_BITS
from repro.energy.params import EnergyParams
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "EnergyAccumulator",
    "EnergyBreakdown",
    "IntervalEnergyInputs",
    "counter_overhead_percent",
]


@dataclass(frozen=True)
class IntervalEnergyInputs:
    """Everything Eqs. (2)-(8) need for one interval."""

    #: T: wall-clock length of the interval in seconds.
    seconds: float
    #: H_L2: L2 hits in the interval.
    l2_hits: int
    #: M_L2: L2 misses in the interval.
    l2_misses: int
    #: N_R: cache lines refreshed in the interval.
    refreshes: int
    #: A_MM: main-memory accesses (fetches + writebacks).
    mem_accesses: int
    #: F_A: active fraction of the cache during the interval.
    active_fraction: float
    #: N_L: cache blocks that underwent a power-state transition.
    transitions: int = 0

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("interval length must be non-negative")
        if not 0.0 <= self.active_fraction <= 1.0:
            raise ValueError("active fraction must be in [0, 1]")
        for name in ("l2_hits", "l2_misses", "refreshes", "mem_accesses", "transitions"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass
class EnergyBreakdown:
    """Joules per component; additive across intervals."""

    l2_leakage_j: float = 0.0
    l2_dynamic_j: float = 0.0
    l2_refresh_j: float = 0.0
    mem_leakage_j: float = 0.0
    mem_dynamic_j: float = 0.0
    algo_j: float = 0.0

    @property
    def l2_total_j(self) -> float:
        """E_L2 (Eq. 3)."""
        return self.l2_leakage_j + self.l2_dynamic_j + self.l2_refresh_j

    @property
    def mem_total_j(self) -> float:
        """E_MM (Eq. 7)."""
        return self.mem_leakage_j + self.mem_dynamic_j

    @property
    def total_j(self) -> float:
        """E (Eq. 2)."""
        return self.l2_total_j + self.mem_total_j + self.algo_j

    def add(self, other: "EnergyBreakdown") -> None:
        """Accumulate another breakdown into this one, component-wise."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict[str, float]:
        """Component values plus derived totals, keyed by name."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["l2_total_j"] = self.l2_total_j
        out["mem_total_j"] = self.mem_total_j
        out["total_j"] = self.total_j
        return out


class EnergyAccumulator:
    """Applies Eqs. (2)-(8) interval by interval.

    When a :class:`~repro.obs.metrics.MetricsRegistry` is injected (and
    enabled), per-interval joules and inputs are recorded under the
    ``energy.*`` metric names; with no registry the accumulator pays a
    single ``is not None`` test per interval.
    """

    def __init__(
        self, params: EnergyParams, registry: MetricsRegistry | None = None
    ) -> None:
        self.params = params
        self.totals = EnergyBreakdown()
        self.intervals = 0
        self._registry = (
            registry if registry is not None and registry.enabled else None
        )

    def add_interval(self, inputs: IntervalEnergyInputs) -> EnergyBreakdown:
        """Account one interval; returns that interval's breakdown."""
        p = self.params
        delta = EnergyBreakdown(
            l2_leakage_j=p.l2_leakage_w * inputs.active_fraction * inputs.seconds,
            l2_dynamic_j=p.l2_dynamic_j * (2 * inputs.l2_misses + inputs.l2_hits),
            l2_refresh_j=p.l2_dynamic_j * inputs.refreshes,
            mem_leakage_j=p.mem_leakage_w * inputs.seconds,
            mem_dynamic_j=p.mem_dynamic_j * inputs.mem_accesses,
            algo_j=p.transition_j * inputs.transitions,
        )
        self.totals.add(delta)
        self.intervals += 1
        reg = self._registry
        if reg is not None:
            reg.counter("energy.intervals").inc()
            for name, joules in delta.as_dict().items():
                reg.counter(f"energy.{name}").inc(joules)
            reg.histogram(
                "energy.interval_refreshes",
                help="N_R per interval",
            ).observe(inputs.refreshes)
            reg.gauge("energy.active_fraction").set(inputs.active_fraction)
        return delta


def counter_overhead_percent(
    num_sets: int,
    associativity: int,
    num_modules: int,
    counter_bits: int = 40,
    block_bits: int = LINE_SIZE_BYTES * 8,
    tag_bits: int = TAG_BITS,
) -> float:
    """Storage overhead of ESTEEM's counters as % of L2 capacity (Eq. 1).

    ``nL2Hit`` and ``Accumulated_L2Hit`` need ``2 * M * A`` counters and
    ``nActiveWay`` needs ``M`` more; each counter is 40 bits.  For the
    paper's 4 MB / 16-way / 16-module cache this evaluates to ~0.06%.

    >>> round(counter_overhead_percent(4096, 16, 16), 2)
    0.06
    """
    if min(num_sets, associativity, num_modules, counter_bits) <= 0:
        raise ValueError("all Eq. 1 inputs must be positive")
    numerator = (2 * associativity + 1) * num_modules * counter_bits
    denominator = num_sets * associativity * (block_bits + tag_bits)
    return numerator / denominator * 100.0
