"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands::

    repro list                          # workloads, mixes, techniques
    repro run -w h264ref -t esteem      # one comparison against the baseline
    repro run -w GkNe -t esteem --cores 2
    repro figure 3                      # regenerate a figure's series
    repro table 3 --system single      # regenerate Table 3 rows
    repro overhead --sets 4096 --ways 16 --modules 16   # Eq. 1
    repro trace -w h264ref -t esteem --format jsonl     # event trace dump
    repro sweep -w gamess,povray --resume --inject PLAN.json  # resilient sweep
    repro report MANIFEST.json --check  # campaign report + regression gate
    repro bench -v                      # throughput bench + regression gate

All experiment subcommands accept ``--instructions`` (trace scale),
``--retention`` (us), and the ESTEEM knobs (``--alpha``, ``--a-min``,
``--modules``, ``--interval``, ``--sampling-ratio``), plus the
observability flags ``--profile`` (span timing report on stderr),
``-v``/``--verbose`` (progress + ETA lines during sweeps) and
``-q``/``--quiet`` (suppress stderr chatter).

Sweep-shaped subcommands (``sweep``, ``figure``) consult a
content-addressed result cache so unchanged units are never re-simulated;
``--no-cache`` disables it and ``--cache-dir`` relocates it (default:
``$REPRO_CACHE_DIR`` or ``~/.cache/repro/results``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.config import SimConfig
from repro.energy.model import counter_overhead_percent
from repro.experiments.figures import (
    fig2_reconfiguration_timeline,
    per_workload_comparison,
)
from repro.experiments.report import format_table
from repro.experiments.parallel import parallel_compare
from repro.experiments.runner import Runner, aggregate
from repro.experiments.tables import SENSITIVITY_VARIANTS, sensitivity_row
from repro.timing.system import TECHNIQUES
from repro.workloads.multiprog import DUAL_CORE_MIXES
from repro.workloads.profiles import ALL_BENCHMARKS

__all__ = ["main"]


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cores", type=int, default=1, choices=(1, 2))
    parser.add_argument("--retention", type=float, default=50.0,
                        help="retention period in microseconds")
    parser.add_argument("--instructions", type=int, default=8_000_000,
                        help="instructions simulated per core")
    parser.add_argument("--alpha", type=float, default=None)
    parser.add_argument("--a-min", type=int, default=None, dest="a_min")
    parser.add_argument("--modules", type=int, default=None)
    parser.add_argument("--interval", type=int, default=None,
                        help="reconfiguration interval in cycles")
    parser.add_argument("--sampling-ratio", type=int, default=None,
                        dest="sampling_ratio")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for workload sweeps")
    parser.add_argument("--cache-dir", default=None, dest="cache_dir",
                        metavar="DIR",
                        help="result-cache directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro/results)")
    parser.add_argument("--no-cache", action="store_true", dest="no_cache",
                        help="neither read nor write the sweep result cache")
    parser.add_argument("--profile", action="store_true",
                        help="print a wall/CPU-time span report on stderr")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="progress + ETA reporting on stderr")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress stderr progress output")


def _build_config(args: argparse.Namespace) -> SimConfig:
    cfg = SimConfig.scaled(
        num_cores=args.cores,
        retention_us=args.retention,
        instructions_per_core=args.instructions,
    )
    overrides = {
        name: getattr(args, name)
        for name in ("alpha", "a_min", "modules", "interval", "sampling_ratio")
        if getattr(args, name) is not None
    }
    if "modules" in overrides:
        overrides["num_modules"] = overrides.pop("modules")
    if "interval" in overrides:
        overrides["interval_cycles"] = overrides.pop("interval")
    return cfg.with_esteem(**overrides) if overrides else cfg


def _cmd_list(_args: argparse.Namespace) -> int:
    print("techniques:", ", ".join(TECHNIQUES))
    print("\nsingle-core workloads (Table 1):")
    rows = [
        [b.acronym, b.name, b.suite, f"{b.l2_apki:.1f}",
         b.max_ws_lines, "yes" if b.is_nonlru else "no"]
        for b in ALL_BENCHMARKS
    ]
    print(format_table(
        ["acr", "name", "suite", "L2 APKI", "max WS lines", "non-LRU"], rows
    ))
    print("\ndual-core mixes (Table 1):")
    print(format_table(
        ["acronym", "benchmarks"],
        [[m.acronym, m.name] for m in DUAL_CORE_MIXES],
    ))
    return 0


def _result_cache(args: argparse.Namespace):
    """The ResultCache selected by ``--cache-dir``/``--no-cache``.

    Returns ``None`` when caching is disabled.  Subcommands without the
    cache flags (e.g. ``run``) fall through to ``None`` too.
    """
    if getattr(args, "no_cache", False) or not hasattr(args, "no_cache"):
        return None
    from repro.experiments.result_cache import ResultCache, default_cache_dir

    root = getattr(args, "cache_dir", None)
    return ResultCache(root if root else default_cache_dir())


def _make_profiler(args: argparse.Namespace):
    """A Profiler when ``--profile`` was given, else None."""
    if not getattr(args, "profile", False):
        return None
    from repro.obs import Profiler

    return Profiler()


def _finish_profile(profiler) -> None:
    if profiler is not None:
        profiler.report(sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    config = _build_config(args)
    profiler = _make_profiler(args)
    runner = Runner(config, seed=args.seed, profiler=profiler)
    rows = []
    for technique in args.technique:
        if technique == "baseline":
            continue
        c = runner.compare(args.workload, technique)
        rows.append(
            [technique, c.energy_saving_pct, c.weighted_speedup,
             c.fair_speedup, c.rpki_decrease, c.mpki_increase,
             c.active_ratio_pct]
        )
    base = runner.baseline(args.workload)
    print(
        f"workload {args.workload}: baseline IPC="
        + "/".join(f"{ipc:.3f}" for ipc in base.ipcs)
        + f", L2 miss rate {base.l2_miss_rate:.1%}, RPKI {base.rpki:.0f}"
    )
    print(format_table(
        ["technique", "saving %", "WS", "FS", "dRPKI", "dMPKI", "active %"],
        rows,
        title=f"techniques vs periodic-all baseline ({args.workload})",
    ))
    _finish_profile(profiler)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    config = _build_config(args)
    profiler = _make_profiler(args)
    if args.number == 2:
        runner = Runner(config, seed=args.seed, profiler=profiler)
        _result, points = fig2_reconfiguration_timeline(runner, args.workload)
        rows = [
            [p.interval, p.active_ratio_pct, " ".join(map(str, p.ways_per_module))]
            for p in points
        ]
        print(format_table(
            ["interval", "active %", "ways per module"], rows,
            title=f"Figure 2: ESTEEM reconfiguration of {args.workload}",
        ))
        _finish_profile(profiler)
        return 0

    cores = 2 if args.number in (4, 6) else 1
    retention = 40.0 if args.number in (5, 6) else 50.0
    config = SimConfig.scaled(
        num_cores=cores,
        retention_us=retention,
        instructions_per_core=args.instructions,
    )
    if cores == 1:
        workloads = [b.name for b in ALL_BENCHMARKS]
    else:
        workloads = [m.acronym for m in DUAL_CORE_MIXES]
    if args.workloads:
        workloads = args.workloads.split(",")
    if args.jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {args.jobs}")
    cache = _result_cache(args)
    if args.jobs > 1:
        raw = parallel_compare(
            config, workloads, ("esteem", "rpv"),
            seed=args.seed, jobs=args.jobs,
            progress=not args.quiet, cache=cache,
        )
        rows = _figure_rows_from_raw(raw)
    else:
        runner = Runner(config, seed=args.seed, profiler=profiler)
        if args.verbose and not args.quiet:
            from repro.obs import ProgressReporter

            reporter = ProgressReporter(len(workloads), label="figure")
            rows, raw = [], {"esteem": [], "rpv": []}
            from repro.experiments.figures import per_workload_comparison as _pwc

            for workload in workloads:
                r, partial = _pwc(runner, [workload], cache=cache)
                rows.extend(r)
                raw["esteem"].extend(partial["esteem"])
                raw["rpv"].extend(partial["rpv"])
                reporter.advance(workload)
            reporter.finish()
        else:
            rows, raw = per_workload_comparison(runner, workloads, cache=cache)
    table = [
        [r.workload, r.esteem_energy_saving_pct, r.rpv_energy_saving_pct,
         r.esteem_weighted_speedup, r.rpv_weighted_speedup]
        for r in rows
    ]
    es, rpv = aggregate(raw["esteem"]), aggregate(raw["rpv"])
    table.append(["AVERAGE", es.energy_saving_pct, rpv.energy_saving_pct,
                  es.weighted_speedup, rpv.weighted_speedup])
    print(format_table(
        ["workload", "ES sav%", "RPV sav%", "ES WS", "RPV WS"],
        table,
        title=f"Figure {args.number}: {cores}-core, {retention:.0f}us retention",
    ))
    if args.csv:
        from repro.experiments.export import write_comparisons_csv

        path = write_comparisons_csv(raw["esteem"] + raw["rpv"], args.csv)
        print(f"CSV written to {path}")
    _finish_profile(profiler)
    return 0


def _figure_rows_from_raw(raw):
    from repro.experiments.figures import FigureRow

    rows = []
    for es, rpv in zip(raw["esteem"], raw["rpv"]):
        rows.append(
            FigureRow(
                workload=es.workload,
                esteem_energy_saving_pct=es.energy_saving_pct,
                rpv_energy_saving_pct=rpv.energy_saving_pct,
                esteem_weighted_speedup=es.weighted_speedup,
                rpv_weighted_speedup=rpv.weighted_speedup,
                esteem_rpki_decrease=es.rpki_decrease,
                rpv_rpki_decrease=rpv.rpki_decrease,
                esteem_mpki_increase=es.mpki_increase,
                esteem_active_ratio_pct=es.active_ratio_pct,
            )
        )
    return rows


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == 2:
        from repro.energy.params import EDRAM_ENERGY_TABLE

        rows = [
            [f"{size // (1024 * 1024)} MB", dyn * 1e9, leak]
            for size, (dyn, leak) in sorted(EDRAM_ENERGY_TABLE.items())
        ]
        print(format_table(
            ["size", "E_dyn (nJ/access)", "P_leak (W)"], rows,
            float_digits=3, title="Table 2: 16-way eDRAM cache energy values",
        ))
        return 0

    system = args.system
    cores = 1 if system == "single" else 2
    config = SimConfig.scaled(
        num_cores=cores, instructions_per_core=args.instructions
    )
    if system == "single":
        workloads = [b.name for b in ALL_BENCHMARKS]
    else:
        workloads = [m.acronym for m in DUAL_CORE_MIXES]
    if args.workloads:
        workloads = args.workloads.split(",")
    profiler = _make_profiler(args)
    variants = SENSITIVITY_VARIANTS[system]
    rows = []
    from repro.obs import ProgressReporter

    reporter = ProgressReporter(
        len(variants), label=f"table3-{system}", enabled=not args.quiet
    )
    for variant in variants:
        if profiler is not None:
            with profiler.span(f"table3:{variant.label}"):
                agg = sensitivity_row(config, variant, workloads, seed=args.seed)
        else:
            agg = sensitivity_row(config, variant, workloads, seed=args.seed)
        rows.append(
            [variant.label, agg.energy_saving_pct, agg.weighted_speedup,
             agg.rpki_decrease, agg.mpki_increase, agg.active_ratio_pct]
        )
        reporter.advance(variant.label)
    print(format_table(
        ["row", "saving %", "WS", "dRPKI", "dMPKI", "active %"], rows,
        title=f"Table 3 ({system}-core)",
    ))
    _finish_profile(profiler)
    return 0


def _load_plan(args: argparse.Namespace):
    """The FaultPlan named by ``--inject``, or None.

    Raises ``SystemExit(2)`` with a stderr message on an unreadable or
    invalid plan file (a usage error, not a crash).
    """
    path = getattr(args, "inject", None)
    if not path:
        return None
    from repro.faults import FaultPlan

    try:
        return FaultPlan.load(path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one (workload, technique) pair and dump its event trace."""
    from repro.obs import Tracer

    config = _build_config(args)
    tracer = Tracer(capacity=args.capacity)
    profiler = _make_profiler(args)
    runner = Runner(
        config,
        seed=args.seed,
        tracer=tracer,
        profiler=profiler,
        fault_plan=_load_plan(args),
    )
    result = runner.run(args.workload, args.technique)

    if args.format == "jsonl":
        text = tracer.to_jsonl() + ("\n" if len(tracer) else "")
    else:
        text = tracer.format_pretty()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        if not args.quiet:
            print(
                f"{len(tracer)} events written to {args.output}",
                file=sys.stderr,
            )
    else:
        sys.stdout.write(text)

    if not args.quiet:
        tally = ", ".join(
            f"{t}={n}" for t, n in sorted(tracer.tally().items())
        )
        dropped = f", {tracer.dropped} dropped" if tracer.dropped else ""
        print(
            f"trace: workload={args.workload} technique={args.technique} "
            f"intervals={result.intervals} events={len(tracer)}"
            f"{dropped} ({tally})",
            file=sys.stderr,
        )
    _finish_profile(profiler)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Resilient multi-workload sweep: timeouts, retries, checkpoint/resume.

    Exit status: 0 for a complete sweep, 3 for a *degraded* one (some
    workloads exhausted their retries, were quarantined as poison, or
    were skipped by a deadline; surviving results were still reported
    and checkpointed), 4 for an *interrupted* one (SIGINT/SIGTERM on the
    parent; the checkpoint was flushed and ``--resume`` finishes the
    rest bit-for-bit).
    """
    from repro.experiments.parallel import resilient_sweep
    from repro.obs.campaign import CampaignDashboard

    config = _build_config(args)
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 1:
        print(
            f"error: --jobs must be at least 1, got {args.jobs}",
            file=sys.stderr,
        )
        return 2
    if args.heartbeat is not None and args.heartbeat <= 0:
        print("error: --heartbeat must be positive", file=sys.stderr)
        return 2
    if args.deadline is not None and args.deadline <= 0:
        print("error: --deadline must be positive", file=sys.stderr)
        return 2
    if args.quarantine_after is not None and args.quarantine_after < 1:
        print(
            "error: --quarantine-after must be at least 1", file=sys.stderr
        )
        return 2
    if config.num_cores == 1:
        workloads = [b.name for b in ALL_BENCHMARKS]
    else:
        workloads = [m.acronym for m in DUAL_CORE_MIXES]
    if args.workloads:
        workloads = args.workloads.split(",")

    plan = _load_plan(args)
    cache = _result_cache(args)
    # The dashboard renders live on a TTY and degrades to the classic
    # line-per-unit reporter when stderr is a pipe (CI logs stay diffable).
    reporter = CampaignDashboard(0, label="sweep", enabled=not args.quiet)
    result = resilient_sweep(
        config,
        workloads,
        tuple(args.technique),
        seed=args.seed,
        jobs=args.jobs,
        timeout_s=args.timeout,
        retries=args.retries,
        backoff_s=args.backoff,
        checkpoint=args.checkpoint,
        resume=args.resume,
        plan=plan,
        progress=reporter,
        cache=cache,
        trace_events=args.trace_events,
        executor=args.executor,
        heartbeat_s=args.heartbeat,
        quarantine_after=args.quarantine_after,
        deadline_s=args.deadline,
    )

    rows = []
    for technique, comps in result.comparisons.items():
        if not comps:
            continue
        agg = aggregate(comps)
        rows.append(
            [technique, agg.workloads, agg.energy_saving_pct,
             agg.weighted_speedup, agg.rpki_decrease, agg.mpki_increase,
             agg.active_ratio_pct]
        )
    if rows:
        print(format_table(
            ["technique", "n", "saving %", "WS", "dRPKI", "dMPKI", "active %"],
            rows,
            title=f"sweep: {len(result.completed)}/{len(workloads)} workloads"
                  + (f" ({len(result.resumed)} resumed)" if result.resumed else "")
                  + (f" ({len(result.cached)} cached)" if result.cached else ""),
        ))
    if args.csv:
        from repro.experiments.export import write_comparisons_csv

        all_comps = [c for comps in result.comparisons.values() for c in comps]
        path = write_comparisons_csv(all_comps, args.csv)
        print(f"CSV written to {path}")
    if args.manifest:
        from repro.experiments.report import build_manifest
        from repro.util import atomic_write_json

        manifest = build_manifest(
            result, config, workloads, tuple(args.technique),
            seed=args.seed, plan=plan, cache=cache,
        )
        atomic_write_json(args.manifest, manifest)
        print(f"manifest written to {args.manifest}")
    if result.quarantined:
        print(
            f"QUARANTINED: {len(result.quarantined)} poison workload(s) "
            f"pulled from the run queue:",
            file=sys.stderr,
        )
        for q in result.quarantined:
            print(
                f"  {q.workload}: [{q.exc_type}] killed {q.workers} "
                f"distinct worker(s) over {q.attempts} attempt(s)",
                file=sys.stderr,
            )
    if result.skipped:
        print(
            f"SKIPPED: {len(result.skipped)} workload(s) cancelled "
            f"({result.skipped[0].reason}); rerun with --resume to "
            f"finish them:",
            file=sys.stderr,
        )
        for s in result.skipped:
            print(f"  {s.workload}: skipped-{s.reason}", file=sys.stderr)
    if result.failed:
        print(
            f"DEGRADED: {len(result.failed)} workload(s) lost after "
            f"{result.attempts} attempts ({result.retries} retries):",
            file=sys.stderr,
        )
        for f in result.failed:
            print(
                f"  {f.workload}: [{f.exc_type}] after {f.attempts} "
                f"attempt(s)",
                file=sys.stderr,
            )
    if result.interrupted:
        # Interrupted wins over degraded: the operator asked the
        # campaign to stop, and the distinct code tells wrappers the
        # checkpoint is resumable rather than the sweep broken.
        print(
            f"INTERRUPTED by {result.interrupted}: checkpoint and "
            f"manifest flushed; rerun with --resume to finish",
            file=sys.stderr,
        )
        return 4
    if result.degraded:
        return 3
    if not args.quiet:
        print(
            f"sweep complete: {len(result.completed)} workload(s), "
            f"{result.attempts} attempt(s), {result.retries} retried",
            file=sys.stderr,
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render a run manifest as markdown/CSV and optionally gate on it.

    Exit status: 2 for an unreadable or schema-invalid manifest, 1 when
    ``--check`` finds an internal inconsistency or a bench regression,
    0 otherwise.
    """
    import json
    from pathlib import Path

    from repro.experiments.report import (
        check_consistency,
        check_regressions,
        render_csv,
        render_markdown,
        validate_manifest,
    )

    try:
        manifest = json.loads(Path(args.manifest).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"error: cannot read manifest: {exc}", file=sys.stderr)
        return 2
    schema_errors = validate_manifest(manifest)
    if schema_errors:
        for err in schema_errors:
            print(f"error: schema: {err}", file=sys.stderr)
        return 2

    checks = None
    consistency = None
    if args.check:
        consistency = check_consistency(manifest)

        def load_baseline(path, default):
            p = Path(path) if path else default
            if not p.exists():
                return None
            return json.loads(p.read_text(encoding="utf-8"))

        repo_root = Path(__file__).resolve().parents[2]
        throughput = load_baseline(
            args.bench_throughput, repo_root / "BENCH_throughput.json"
        )
        sweep = load_baseline(args.bench_sweep, repo_root / "BENCH_sweep.json")
        checks = check_regressions(
            manifest, throughput, sweep, tolerance=args.tolerance
        )

    if args.format == "csv":
        text = render_csv(manifest)
    else:
        text = render_markdown(manifest, checks=checks,
                               consistency=consistency)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        if not args.quiet:
            print(f"report written to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)

    if args.check:
        failures = list(consistency or [])
        failures += checks[0]
        for msg in consistency or []:
            print(f"INCONSISTENT: {msg}", file=sys.stderr)
        for msg in checks[0]:
            print(f"REGRESSION: {msg}", file=sys.stderr)
        if failures:
            return 1
        if not args.quiet:
            skipped, passed = checks[1], checks[2]
            print(
                f"check ok: {len(passed)} passed, {len(skipped)} skipped",
                file=sys.stderr,
            )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the end-to-end throughput bench and gate locally.

    Same measurement and gates as ``benchmarks/check_throughput.py`` (and
    the CI bench-smoke job): per-technique batch/scalar/reference timings
    with the batch-kernel >= 1.3x floor.  Exit status 0 on pass, 1 on
    regression, 0 with a note when no baseline is recorded.
    """
    import json

    from repro.experiments.throughput import (
        BASELINE_PATH,
        check,
        make_record,
        measure,
    )

    profiler = _make_profiler(args)

    def on_row(technique, row):
        if args.verbose and not args.quiet:
            print(
                f"bench: {technique}: batch {row['batch_seconds']:.3f}s, "
                f"scalar {row['scalar_seconds']:.3f}s, reference "
                f"{row['reference_seconds']:.3f}s "
                f"({row['batch_speedup_vs_scalar']:.2f}x batch/scalar)",
                file=sys.stderr,
            )

    kwargs = {}
    if args.instructions is not None:
        kwargs["instructions"] = args.instructions
    if args.workload is not None:
        kwargs["workload"] = args.workload
    current = measure(
        rounds=args.rounds, profiler=profiler, on_row=on_row, **kwargs
    )
    rows = [
        [t, row["minstr_per_s"], row["batch_speedup_vs_scalar"],
         row["speedup_vs_reference"], row["kernel_batch_records"],
         row["kernel_scalar_records"]]
        for t, row in current["techniques"].items()
    ]
    print(format_table(
        ["technique", "Minstr/s", "batch/scalar", "vs reference",
         "batch recs", "scalar recs"],
        rows,
        title=(
            f"throughput: {current['workload']}, "
            f"{current['instructions']:,} instructions"
        ),
    ))
    _finish_profile(profiler)

    if args.update or not BASELINE_PATH.exists():
        from repro.util import atomic_write_json

        atomic_write_json(BASELINE_PATH, make_record(current))
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    failures = check(
        current,
        baseline["bench_end_to_end_simulation_rate"],
        tolerance=args.tolerance,
    )
    if failures:
        for f in failures:
            print("REGRESSION:", f, file=sys.stderr)
        return 1
    print(
        f"ok: batch kernel {current['best_batch_speedup_vs_scalar']:.2f}x "
        f"over the scalar fast loop"
    )
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    pct = counter_overhead_percent(args.sets, args.ways, args.modules)
    print(
        f"Eq. 1 overhead for S={args.sets}, A={args.ways}, "
        f"M={args.modules}: {pct:.4f}% of L2 capacity"
    )
    return 0


def _cmd_trace_stats(args: argparse.Namespace) -> int:
    from repro.workloads.profiles import get_profile
    from repro.workloads.synthetic import generate_trace

    profile = get_profile(args.workload)
    trace = generate_trace(profile, args.instructions, seed=args.seed)
    import collections

    gaps = trace.gaps
    reuse = collections.Counter()
    last_seen: dict[int, int] = {}
    distinct_between = 0
    for i, addr in enumerate(trace.addrs):
        prev = last_seen.get(addr)
        if prev is None:
            reuse["cold"] += 1
        else:
            d = i - prev
            if d <= 8:
                reuse["<=8"] += 1
            elif d <= 64:
                reuse["<=64"] += 1
            elif d <= 4096:
                reuse["<=4096"] += 1
            else:
                reuse[">4096"] += 1
        last_seen[addr] = i
    rows = [
        ["records", len(trace)],
        ["instructions", trace.instructions],
        ["L2 APKI", f"{len(trace) / trace.instructions * 1000:.2f}"],
        ["distinct lines", trace.distinct_lines()],
        ["footprint (paper scale)", trace.footprint_lines],
        ["write fraction", f"{trace.write_fraction:.3f}"],
        ["mean gap", f"{sum(gaps) / len(gaps):.1f}"],
        ["base CPI", trace.base_cpi],
        ["memory-level parallelism", trace.mem_mlp],
    ]
    for bucket in ("cold", "<=8", "<=64", "<=4096", ">4096"):
        rows.append(
            [f"reuse distance {bucket}",
             f"{reuse.get(bucket, 0) / len(trace):.1%}"]
        )
    print(format_table(["statistic", "value"], rows,
                       title=f"trace statistics: {args.workload}"))
    if args.save:
        trace.save(args.save)
        print(f"trace written to {args.save}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ESTEEM (HPDC'14) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, mixes and techniques")

    run = sub.add_parser("run", help="run techniques on one workload")
    run.add_argument("-w", "--workload", required=True,
                     help="benchmark name/acronym, or mix acronym with --cores 2")
    run.add_argument(
        "-t", "--technique", nargs="+", default=["esteem", "rpv"],
        choices=[t for t in TECHNIQUES],
    )
    _add_machine_args(run)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("number", type=int, choices=(2, 3, 4, 5, 6))
    fig.add_argument("--workload", default="h264ref",
                     help="workload for figure 2")
    fig.add_argument("--workloads", default=None,
                     help="comma-separated subset for figures 3-6")
    fig.add_argument("--csv", default=None,
                     help="also write per-workload comparisons as CSV")
    _add_machine_args(fig)

    tab = sub.add_parser("table", help="regenerate a paper table")
    tab.add_argument("number", type=int, choices=(2, 3))
    tab.add_argument("--system", choices=("single", "dual"), default="single")
    tab.add_argument("--workloads", default=None,
                     help="comma-separated workload subset")
    _add_machine_args(tab)

    trc = sub.add_parser(
        "trace",
        help="run one (workload, technique) pair and dump the event trace",
    )
    trc.add_argument("-w", "--workload", required=True,
                     help="benchmark name/acronym, or mix acronym with --cores 2")
    trc.add_argument("-t", "--technique", default="esteem",
                     choices=[t for t in TECHNIQUES])
    trc.add_argument("--format", choices=("jsonl", "pretty"), default="jsonl",
                     help="event dump format (default: jsonl)")
    trc.add_argument("--output", default=None,
                     help="write the trace to a file instead of stdout")
    trc.add_argument("--capacity", type=int, default=65_536,
                     help="event ring-buffer capacity")
    _add_machine_args(trc)
    # Default to the quick bench scale so the emitted interval-decision
    # sequence matches benchmarks/results/fig2_reconfig_timeline.txt.
    trc.add_argument("--inject", default=None, metavar="PLAN.json",
                     help="fault plan whose hardware faults are injected "
                          "(events show up as fault.inject in the trace)")
    trc.set_defaults(instructions=4_000_000)

    swp = sub.add_parser(
        "sweep",
        help="resilient multi-workload sweep with checkpoint/resume, "
             "timeouts and retries",
    )
    swp.add_argument("--workloads", default=None,
                     help="comma-separated workload subset (default: all "
                          "Table 1 workloads for the core count)")
    swp.add_argument(
        "-t", "--technique", nargs="+", default=["esteem", "rpv"],
        choices=[t for t in TECHNIQUES],
    )
    swp.add_argument("--timeout", type=float, default=None,
                     help="per-attempt wall-clock timeout in seconds "
                          "(hung workers are terminated and retried)")
    swp.add_argument("--retries", type=int, default=2,
                     help="retry budget per workload for transient "
                          "failures (default: 2)")
    swp.add_argument("--backoff", type=float, default=0.5,
                     help="base retry backoff in seconds, doubled per "
                          "attempt (default: 0.5)")
    swp.add_argument("--checkpoint", default=None, metavar="FILE.jsonl",
                     help="persist completed workloads (atomic JSONL)")
    swp.add_argument("--resume", action="store_true",
                     help="skip workloads already in --checkpoint")
    swp.add_argument("--inject", default=None, metavar="PLAN.json",
                     help="fault plan: hardware faults for every run, "
                          "chaos actions for the workers")
    swp.add_argument("--csv", default=None,
                     help="write surviving comparisons as CSV")
    swp.add_argument("--manifest", default=None, metavar="FILE.json",
                     help="write the structured run manifest as JSON "
                          "(input for `repro report`)")
    swp.add_argument("--trace-events", type=int, default=0,
                     dest="trace_events", metavar="N",
                     help="per-worker event ring capacity; the tail of "
                          "each unit's trace ships home in the manifest "
                          "(default 0: metrics only, keeps the fast path)")
    swp.add_argument("--executor", default=None,
                     choices=["pool", "spawn", "inprocess", "remote"],
                     help="execution backend from the executor registry "
                          "(default: the warm worker pool)")
    swp.add_argument("--heartbeat", type=float, default=None,
                     metavar="SECONDS",
                     help="worker heartbeat interval; a worker whose "
                          "beats flatline is condemned as hung after 2 "
                          "missed intervals instead of waiting out the "
                          "full --timeout (default: off)")
    swp.add_argument("--deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="whole-campaign wall-clock budget; on expiry, "
                          "unfinished workloads are recorded as "
                          "skipped-deadline, never silently dropped "
                          "(default: off)")
    swp.add_argument("--quarantine-after", type=int, default=None,
                     dest="quarantine_after", metavar="N",
                     help="quarantine a workload whose attempts kill N "
                          "distinct workers (poison-unit detection; "
                          "default: off)")
    _add_machine_args(swp)
    # Sweeps are the bulk workload: default the worker count to the
    # machine instead of 1 (None -> os.cpu_count() in resilient_sweep).
    swp.set_defaults(jobs=None)

    rep = sub.add_parser(
        "report",
        help="render a sweep run manifest as markdown/CSV, with optional "
             "consistency + bench-regression gating",
    )
    rep.add_argument("manifest", metavar="MANIFEST.json",
                     help="run manifest written by `repro sweep --manifest`")
    rep.add_argument("--format", choices=("md", "csv"), default="md",
                     help="output format (default: md)")
    rep.add_argument("--output", default=None,
                     help="write the report to a file instead of stdout")
    rep.add_argument("--check", action="store_true",
                     help="verify internal consistency and compare rates "
                          "against the committed BENCH baselines; exit 1 "
                          "on failure")
    rep.add_argument("--tolerance", type=float, default=0.10,
                     help="allowed fractional rate regression for --check "
                          "(default 0.10)")
    rep.add_argument("--bench-throughput", default=None, metavar="FILE.json",
                     dest="bench_throughput",
                     help="throughput baseline (default: the repo's "
                          "BENCH_throughput.json)")
    rep.add_argument("--bench-sweep", default=None, metavar="FILE.json",
                     dest="bench_sweep",
                     help="sweep baseline (default: the repo's "
                          "BENCH_sweep.json)")
    rep.add_argument("-q", "--quiet", action="store_true",
                     help="suppress stderr status output")

    ben = sub.add_parser(
        "bench",
        help="run the end-to-end throughput bench and regression gate",
    )
    ben.add_argument("--update", action="store_true",
                     help="record the measurement as the new baseline "
                          "(BENCH_throughput.json)")
    ben.add_argument("--tolerance", type=float, default=0.25,
                     help="allowed fractional regression in absolute rate "
                          "(default 0.25)")
    ben.add_argument("--rounds", type=int, default=3,
                     help="timing rounds per path (best-of, default 3)")
    ben.add_argument("--instructions", type=int, default=None,
                     help="trace scale (default: the bench module's "
                          "recorded scale; smaller runs understate the "
                          "batch kernel)")
    ben.add_argument("-w", "--workload", default=None,
                     help="bench workload (default: the recorded one)")
    ben.add_argument("--profile", action="store_true",
                     help="print a wall/CPU-time span report on stderr")
    ben.add_argument("-v", "--verbose", action="count", default=0,
                     help="per-technique progress lines on stderr")
    ben.add_argument("-q", "--quiet", action="store_true",
                     help="suppress stderr progress output")

    ovh = sub.add_parser("overhead", help="evaluate Eq. 1 counter overhead")
    ovh.add_argument("--sets", type=int, default=4096)
    ovh.add_argument("--ways", type=int, default=16)
    ovh.add_argument("--modules", type=int, default=16)

    ts = sub.add_parser(
        "trace-stats", help="generate a workload trace and characterise it"
    )
    ts.add_argument("-w", "--workload", required=True)
    ts.add_argument("--instructions", type=int, default=4_000_000)
    ts.add_argument("--seed", type=int, default=0)
    ts.add_argument("--save", default=None,
                    help="also write the trace as a .npz file")

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "figure": _cmd_figure,
        "table": _cmd_table,
        "bench": _cmd_bench,
        "overhead": _cmd_overhead,
        "trace": _cmd_trace,
        "trace-stats": _cmd_trace_stats,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
