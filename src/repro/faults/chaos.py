"""Plane 2: chaos injection into sweep worker processes.

:class:`ChaosWorkerProxy` wraps the real per-unit work function inside a
sweep worker.  Before (and after) running the unit it consults the
:class:`~repro.faults.plan.FaultPlan`'s chaos script for this
``(workload, attempt)`` and misbehaves on demand:

``crash``
    ``os._exit(CHAOS_EXIT_CODE)`` -- the process dies without unwinding,
    like a segfault or an OOM kill.  The parent sees a broken pipe, not
    a Python exception.
``raise``
    Raises :class:`ChaosError` inside the worker -- a "normal" worker
    exception that travels back through the error channel.
``hang``
    Sleeps ``plan.hang_seconds`` before starting the unit, tripping the
    harness's wall-clock timeout (the parent terminates the worker).
    With heartbeats enabled the worker keeps *beating* through the sleep
    -- it is slow-but-alive, and the supervised sweep correctly waits
    for the full unit deadline rather than the heartbeat window.
``corrupt``
    Runs the unit to completion, then mangles the result so the
    harness's result validation rejects it.
``stall-heartbeat``
    Suspends the worker's heartbeat pump (via the control hook the pump
    registers), then sleeps like ``hang``.  To the parent this is a
    *hung* worker -- beats flatline while the process lives -- and the
    supervised sweep must detect it within the heartbeat window, not the
    full unit timeout.  Without heartbeats it degrades to a plain hang.
``poison``
    ``os._exit(POISON_EXIT_CODE)`` on every scripted attempt -- the
    signature of a poison unit that kills whichever worker picks it up.
    Distinct exit code so tests can tell a scripted poison death from a
    generic chaos crash.
``kill``
    ``SIGKILL`` to self -- the hardest crash there is: no exit handler,
    no SIGTERM flush, telemetry unconditionally lost.

These are exactly the failure modes the resilient sweep harness must
survive; the proxy exists so tests and benchmarks can script them
deterministically instead of waiting for real infrastructure to flake.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Callable

from repro.faults.plan import FaultPlan

__all__ = [
    "CHAOS_EXIT_CODE",
    "POISON_EXIT_CODE",
    "ChaosError",
    "ChaosWorkerProxy",
    "clear_heartbeat_control",
    "corrupt_result",
    "register_heartbeat_control",
]

#: Exit status used by ``crash`` so tests can tell a scripted crash from a
#: genuine interpreter death.
CHAOS_EXIT_CODE = 86

#: Exit status used by ``poison`` -- distinct from ``crash`` so the
#: quarantine path is distinguishable from garden-variety chaos.
POISON_EXIT_CODE = 87


class ChaosError(RuntimeError):
    """Deterministic failure raised by the ``raise`` chaos action."""


# The worker's heartbeat pump registers its suspend callable here so the
# ``stall-heartbeat`` action can flatline the beats without touching the
# attempt itself.  Worker-process-local by construction (each worker is
# its own process with its own module state).
_HEARTBEAT_CONTROL: Callable[[], None] | None = None


def register_heartbeat_control(suspend: Callable[[], None]) -> None:
    """Install the active attempt's heartbeat-suspend hook."""
    global _HEARTBEAT_CONTROL
    _HEARTBEAT_CONTROL = suspend


def clear_heartbeat_control() -> None:
    global _HEARTBEAT_CONTROL
    _HEARTBEAT_CONTROL = None


def corrupt_result(result):
    """Mangle a worker result so validation rejects it.

    Returns a stand-in that is *not* the list of comparisons the harness
    expects, simulating a worker whose result pipe delivered garbage.
    """
    return {"corrupted": True, "original_type": type(result).__name__}


class ChaosWorkerProxy:
    """Wraps a unit-of-work callable with scripted misbehaviour."""

    def __init__(self, plan: FaultPlan, workload: str, attempt: int) -> None:
        self.plan = plan
        self.workload = workload
        self.attempt = attempt
        self.action = plan.chaos_action(workload, attempt)

    def __call__(self, fn: Callable[[], object]) -> object:
        action = self.action
        if action == "crash":
            os._exit(CHAOS_EXIT_CODE)
        if action == "poison":
            os._exit(POISON_EXIT_CODE)
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if action == "raise":
            raise ChaosError(
                f"scripted failure for workload {self.workload!r} "
                f"(attempt {self.attempt})"
            )
        if action == "stall-heartbeat":
            if _HEARTBEAT_CONTROL is not None:
                _HEARTBEAT_CONTROL()
            time.sleep(self.plan.hang_seconds)
        if action == "hang":
            time.sleep(self.plan.hang_seconds)
        result = fn()
        if action == "corrupt":
            return corrupt_result(result)
        return result
