"""Plane 2: chaos injection into sweep worker processes.

:class:`ChaosWorkerProxy` wraps the real per-unit work function inside a
sweep worker.  Before (and after) running the unit it consults the
:class:`~repro.faults.plan.FaultPlan`'s chaos script for this
``(workload, attempt)`` and misbehaves on demand:

``crash``
    ``os._exit(CHAOS_EXIT_CODE)`` -- the process dies without unwinding,
    like a segfault or an OOM kill.  The parent sees a broken pipe, not
    a Python exception.
``raise``
    Raises :class:`ChaosError` inside the worker -- a "normal" worker
    exception that travels back through the error channel.
``hang``
    Sleeps ``plan.hang_seconds`` before starting the unit, tripping the
    harness's wall-clock timeout (the parent terminates the worker).
``corrupt``
    Runs the unit to completion, then mangles the result so the
    harness's result validation rejects it.

All four are exactly the failure modes the resilient sweep harness must
survive; the proxy exists so tests and benchmarks can script them
deterministically instead of waiting for real infrastructure to flake.
"""

from __future__ import annotations

import os
import time
from typing import Callable

from repro.faults.plan import FaultPlan

__all__ = ["CHAOS_EXIT_CODE", "ChaosError", "ChaosWorkerProxy", "corrupt_result"]

#: Exit status used by ``crash`` so tests can tell a scripted crash from a
#: genuine interpreter death.
CHAOS_EXIT_CODE = 86


class ChaosError(RuntimeError):
    """Deterministic failure raised by the ``raise`` chaos action."""


def corrupt_result(result):
    """Mangle a worker result so validation rejects it.

    Returns a stand-in that is *not* the list of comparisons the harness
    expects, simulating a worker whose result pipe delivered garbage.
    """
    return {"corrupted": True, "original_type": type(result).__name__}


class ChaosWorkerProxy:
    """Wraps a unit-of-work callable with scripted misbehaviour."""

    def __init__(self, plan: FaultPlan, workload: str, attempt: int) -> None:
        self.plan = plan
        self.workload = workload
        self.attempt = attempt
        self.action = plan.chaos_action(workload, attempt)

    def __call__(self, fn: Callable[[], object]) -> object:
        action = self.action
        if action == "crash":
            os._exit(CHAOS_EXIT_CODE)
        if action == "raise":
            raise ChaosError(
                f"scripted failure for workload {self.workload!r} "
                f"(attempt {self.attempt})"
            )
        if action == "hang":
            time.sleep(self.plan.hang_seconds)
        result = fn()
        if action == "corrupt":
            return corrupt_result(result)
        return result
