"""Plane 1: seeded injection of eDRAM retention faults into a live run.

A :class:`FaultInjector` is built by :class:`~repro.timing.system.System`
when a :class:`~repro.faults.plan.FaultPlan` with hardware faults is
supplied, and is consulted by :meth:`~repro.edram.refresh.RefreshEngine.
advance_to` at every refresh boundary.  Faults latch at boundaries (not
at their exact due cycle): a decayed cell's corruption is discovered when
the refresh logic next touches the line, and boundary-latching keeps the
reference / chunked / fast simulation loops on the identical fault
schedule, so a faulted run is loop-independent and reproduces bit for
bit under retry.

Each injected fault resolves to one of four outcomes:

``masked``
    The targeted line was invalid (or the way is out of range for the
    current cache) -- flipping bits in dead cells has no architectural
    effect.
``corrected``
    The run's ECC can correct at least as many bits as the fault flipped
    (only the ``ecc`` technique has correction capability); the line
    survives untouched.
``invalidated-clean``
    A clean line was dropped; the next access re-fetches it from memory
    (a performance cost, not a correctness one).
``data-loss``
    A *dirty* line was dropped -- the modified data existed only in the
    cache, so this is unrecoverable silent data corruption.  This is the
    outcome that bounds how far refresh power can be cut (paper
    Section 2's reliability argument).

Every fault emits an :data:`~repro.obs.trace.EVENT_FAULT_INJECT` trace
event and bumps ``faults.*`` metrics counters, so injections are visible
in ``repro trace`` / ``repro trace-stats`` output.
"""

from __future__ import annotations

import numpy as np

from repro.cache.cache import SetAssociativeCache
from repro.config import RefreshConfig
from repro.faults.plan import FaultPlan
from repro.obs.trace import EVENT_FAULT_INJECT

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a :class:`FaultPlan`'s hardware faults to one run's cache.

    Parameters
    ----------
    plan:
        The fault plan (explicit events and/or per-bank rates).
    cache:
        The L2 model whose lines get corrupted.
    config:
        Refresh machinery parameters (bank count, retention period).
    workload, technique:
        Identity of the run; together with ``plan.seed`` they key the
        RNG stream, so a retried run replays identical faults.
    correctable_bits:
        Bits per line the run's ECC can correct (0 for every technique
        except ``ecc``).
    tracer:
        Event tracer (``None`` = disabled), shared with the system.
    metrics:
        Metrics registry (``None`` = disabled), shared with the system.
    """

    def __init__(
        self,
        plan: FaultPlan,
        cache: SetAssociativeCache,
        config: RefreshConfig,
        workload: str,
        technique: str,
        correctable_bits: int = 0,
        tracer=None,
        metrics=None,
    ) -> None:
        self.plan = plan
        self.cache = cache
        self.correctable_bits = correctable_bits
        self.tracer = tracer
        num_banks = config.num_banks
        if plan.bank_rates is not None and len(plan.bank_rates) != num_banks:
            raise ValueError(
                f"fault plan names {len(plan.bank_rates)} bank rates but the "
                f"machine has {num_banks} banks"
            )
        self._rng = np.random.default_rng(plan.rng_seed_for(workload, technique))
        self._events = sorted(plan.events, key=lambda e: (e.cycle, e.set_index, e.way))
        self._next_event = 0
        if plan.bank_rates is not None:
            rates = plan.bank_rates
        else:
            rates = (plan.flip_rate,) * num_banks
        self._bank_rates = rates
        self._rate_bits = plan.rate_bits
        # Per-bank arrays of global line indices (the bank layout is static:
        # low-order set interleaving, see BankedRefreshScheduler.bank_of_set).
        a = cache.associativity
        num_lines = cache.state.num_lines
        # Vectorised form of BankedRefreshScheduler.bank_of_set (low-order
        # set interleaving: bank = set_index % num_banks).
        banks_of_lines = (np.arange(num_lines) // a) % num_banks
        self._bank_lines = tuple(
            np.nonzero(banks_of_lines == b)[0] for b in range(num_banks)
        )
        self._any_rate = any(r > 0.0 for r in rates)
        # Outcome counters (reported via SystemResult).
        self.injected = 0
        self.masked = 0
        self.corrected = 0
        self.invalidated_clean = 0
        self.data_loss = 0
        if metrics is not None:
            self._c_injected = metrics.counter("faults.injected")
            self._c_masked = metrics.counter("faults.masked")
            self._c_corrected = metrics.counter("faults.corrected")
            self._c_invalidated = metrics.counter("faults.invalidated_clean")
            self._c_data_loss = metrics.counter("faults.data_loss")
        else:
            self._c_injected = None
            self._c_masked = None
            self._c_corrected = None
            self._c_invalidated = None
            self._c_data_loss = None

    # ------------------------------------------------------------------

    def at_boundary(self, boundary_cycle: int) -> None:
        """Latch every fault due at or before this refresh boundary."""
        events = self._events
        i = self._next_event
        a = self.cache.associativity
        while i < len(events) and events[i].cycle <= boundary_cycle:
            ev = events[i]
            i += 1
            if ev.way >= a or ev.set_index >= len(self.cache.sets):
                self._record(None, ev.bits, boundary_cycle, "masked", "event")
                continue
            g = ev.set_index * a + ev.way
            self._apply(g, ev.bits, boundary_cycle, "event")
        self._next_event = i
        if self._any_rate:
            self._rate_draw(boundary_cycle)

    def _rate_draw(self, boundary_cycle: int) -> None:
        """Per-bank binomial draw over currently valid lines."""
        valid = self.cache.state.valid
        rng = self._rng
        bits = self._rate_bits
        for bank, rate in enumerate(self._bank_rates):
            if rate <= 0.0:
                continue
            lines = self._bank_lines[bank]
            valid_lines = lines[valid[lines]]
            n_valid = int(valid_lines.size)
            if n_valid == 0:
                continue
            n_fail = int(rng.binomial(n_valid, rate))
            if n_fail == 0:
                continue
            victims = rng.choice(valid_lines, size=n_fail, replace=False)
            for g in victims:
                self._apply(int(g), bits, boundary_cycle, "rate")

    def _apply(self, g: int, bits: int, cycle: int, source: str) -> None:
        """Resolve one fault on global line ``g`` to an outcome."""
        if not self.cache.state.valid[g]:
            self._record(g, bits, cycle, "masked", source)
            return
        if bits <= self.correctable_bits:
            self._record(g, bits, cycle, "corrected", source)
            return
        _tag, was_dirty = self.cache.invalidate_line(g)
        outcome = "data-loss" if was_dirty else "invalidated-clean"
        self._record(g, bits, cycle, outcome, source)

    def _record(
        self, g: int | None, bits: int, cycle: int, outcome: str, source: str
    ) -> None:
        self.injected += 1
        if outcome == "masked":
            self.masked += 1
            c = self._c_masked
        elif outcome == "corrected":
            self.corrected += 1
            c = self._c_corrected
        elif outcome == "invalidated-clean":
            self.invalidated_clean += 1
            c = self._c_invalidated
        else:
            self.data_loss += 1
            c = self._c_data_loss
        if c is not None:
            c.inc()
            self._c_injected.inc()
        tracer = self.tracer
        if tracer is not None:
            a = self.cache.associativity
            tracer.emit(
                EVENT_FAULT_INJECT,
                cycle,
                outcome=outcome,
                source=source,
                bits=bits,
                set=-1 if g is None else g // a,
                way=-1 if g is None else g % a,
            )
