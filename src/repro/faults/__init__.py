"""Deterministic fault injection: modeled eDRAM faults + harness chaos.

Two planes, one seeded :class:`~repro.faults.plan.FaultPlan`:

* Plane 1 (:mod:`repro.faults.inject`): retention failures / bit-flips
  in the modeled eDRAM cache, latched at refresh boundaries, interacting
  with ECC correction and dirty-line data-loss accounting.
* Plane 2 (:mod:`repro.faults.chaos`): crash / hang / corrupt-result
  behaviour of sweep worker processes, driving the resilient sweep
  harness in :mod:`repro.experiments.parallel`.
"""

from repro.faults.chaos import (
    CHAOS_EXIT_CODE,
    ChaosError,
    ChaosWorkerProxy,
    corrupt_result,
)
from repro.faults.inject import FaultInjector
from repro.faults.plan import CHAOS_ACTIONS, FaultEvent, FaultPlan

__all__ = [
    "CHAOS_ACTIONS",
    "CHAOS_EXIT_CODE",
    "ChaosError",
    "ChaosWorkerProxy",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "corrupt_result",
]
