"""Deterministic fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a declarative, JSON-serialisable description of
faults to inject into a run or a sweep.  It covers both planes of the
fault subsystem:

* **Plane 1 -- modeled hardware faults** (consumed by
  :class:`~repro.faults.inject.FaultInjector`): retention failures /
  transient bit-flips in eDRAM cache lines, either as a per-bank rate
  (``flip_rate`` / ``bank_rates``: probability per valid line per
  retention window) or as explicit ``(set, way, cycle)`` events.
* **Plane 2 -- harness faults** (consumed by
  :class:`~repro.faults.chaos.ChaosWorkerProxy`): crash / hang /
  corrupt-result behaviour of sweep worker processes, keyed by workload
  and attempt number so a retried unit can behave differently from the
  first attempt.

Everything is derived deterministically from ``seed`` plus stable string
keys (workload, technique, attempt), so a retried or resumed run
reproduces its faults bit for bit.  The JSON schema (all fields optional
except that an empty plan injects nothing)::

    {
      "seed": 7,
      "flip_rate": 1e-4,
      "bank_rates": [0.0, 1e-4, 0.0, 0.0],
      "rate_bits": 1,
      "events": [{"set": 12, "way": 3, "cycle": 200000, "bits": 2}],
      "chaos": {"gamess": ["crash"], "povray": ["hang"], "*": []},
      "chaos_rates": {"crash": 0.0, "hang": 0.0, "corrupt": 0.0},
      "hang_seconds": 30.0
    }
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.util import atomic_write

__all__ = ["CHAOS_ACTIONS", "FaultEvent", "FaultPlan"]

#: Worker behaviours a chaos entry may request.  ``ok`` runs normally;
#: ``crash`` hard-kills the worker process (no Python traceback, like a
#: segfault or OOM kill); ``raise`` raises a :class:`~repro.faults.chaos.
#: ChaosError` inside the worker; ``hang`` sleeps ``hang_seconds`` before
#: running (tripping the harness timeout -- with heartbeats on, the
#: worker keeps beating: slow-but-alive); ``corrupt`` completes the unit
#: but mangles the returned results (tripping result validation);
#: ``stall-heartbeat`` flatlines the worker's heartbeat pump and then
#: hangs (a *hung* worker the supervised sweep must catch in O(heartbeat
#: interval)); ``poison`` hard-kills with its own exit code on every
#: scripted attempt (the poison-unit quarantine signature); ``kill``
#: SIGKILLs the worker (no SIGTERM flush, telemetry unconditionally
#: lost).
CHAOS_ACTIONS: tuple[str, ...] = (
    "ok", "crash", "raise", "hang", "corrupt",
    "stall-heartbeat", "poison", "kill",
)


def _stable_seed(*parts: object) -> int:
    """A 63-bit seed derived from ``parts`` via SHA-256 (stable across
    processes and Python versions, unlike ``hash``)."""
    text = "|".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class FaultEvent:
    """One explicit hardware fault: bits flip in (set, way) at ``cycle``.

    The fault manifests at the first refresh boundary at or after
    ``cycle`` (see :class:`~repro.edram.refresh.RefreshEngine.advance_to`).
    """

    set_index: int
    way: int
    cycle: int
    bits: int = 1

    def __post_init__(self) -> None:
        if self.set_index < 0:
            raise ValueError("fault event set index must be non-negative")
        if self.way < 0:
            raise ValueError("fault event way must be non-negative")
        if self.cycle < 0:
            raise ValueError("fault event cycle must be non-negative")
        if self.bits < 1:
            raise ValueError("fault event must flip at least one bit")

    def as_dict(self) -> dict[str, int]:
        return {
            "set": self.set_index,
            "way": self.way,
            "cycle": self.cycle,
            "bits": self.bits,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FaultEvent":
        return cls(
            set_index=int(raw.get("set", raw.get("set_index", -1))),
            way=int(raw["way"]),
            cycle=int(raw["cycle"]),
            bits=int(raw.get("bits", 1)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded description of faults to inject."""

    #: Root seed every derived RNG stream is keyed from.
    seed: int = 0
    #: Plane 1: probability per valid line per retention window of a
    #: transient flip of ``rate_bits`` bits (applied to every bank unless
    #: ``bank_rates`` overrides per bank).
    flip_rate: float = 0.0
    #: Optional per-bank rates; length must equal the machine's bank
    #: count when used (checked by the injector, which knows the config).
    bank_rates: tuple[float, ...] | None = None
    #: Bits flipped by each rate-drawn fault (1 = correctable by SECDED).
    rate_bits: int = 1
    #: Plane 1: explicit (set, way, cycle) fault events.
    events: tuple[FaultEvent, ...] = ()
    #: Plane 2: per-workload chaos scripts -- ``chaos[workload][attempt]``
    #: is the worker behaviour for that attempt; attempts beyond the end
    #: of the list behave normally.  The key ``"*"`` applies to any
    #: workload without its own entry.
    chaos: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    #: Plane 2: probabilistic chaos -- ``{action: probability}`` drawn per
    #: (workload, attempt) from a seed-derived stream when no explicit
    #: script matched.
    chaos_rates: Mapping[str, float] = field(default_factory=dict)
    #: How long a ``hang`` action sleeps before running the unit.
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.flip_rate <= 1.0:
            raise ValueError("flip_rate must be a probability in [0, 1]")
        if self.bank_rates is not None:
            object.__setattr__(
                self, "bank_rates", tuple(float(r) for r in self.bank_rates)
            )
            for r in self.bank_rates:
                if not 0.0 <= r <= 1.0:
                    raise ValueError("bank rates must be probabilities in [0, 1]")
        if self.rate_bits < 1:
            raise ValueError("rate_bits must be at least 1")
        object.__setattr__(
            self,
            "events",
            tuple(
                e if isinstance(e, FaultEvent) else FaultEvent.from_dict(e)
                for e in self.events
            ),
        )
        chaos = {
            str(w): tuple(str(a) for a in seq) for w, seq in self.chaos.items()
        }
        for w, seq in chaos.items():
            for action in seq:
                if action not in CHAOS_ACTIONS:
                    raise ValueError(
                        f"unknown chaos action {action!r} for workload {w!r}; "
                        f"use one of {CHAOS_ACTIONS}"
                    )
        object.__setattr__(self, "chaos", chaos)
        rates = {str(a): float(p) for a, p in self.chaos_rates.items()}
        for action, p in rates.items():
            if action not in CHAOS_ACTIONS or action == "ok":
                raise ValueError(
                    f"chaos_rates key {action!r} must be one of "
                    f"{[a for a in CHAOS_ACTIONS if a != 'ok']}"
                )
            if not 0.0 <= p <= 1.0:
                raise ValueError("chaos rates must be probabilities in [0, 1]")
        object.__setattr__(self, "chaos_rates", rates)
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be non-negative")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def has_model_faults(self) -> bool:
        """Whether Plane 1 (hardware-fault injection) is active."""
        if self.events:
            return True
        if self.flip_rate > 0.0:
            return True
        return self.bank_rates is not None and any(
            r > 0.0 for r in self.bank_rates
        )

    def has_chaos(self) -> bool:
        """Whether Plane 2 (harness chaos) is active."""
        if any(seq for seq in self.chaos.values()):
            return True
        return any(p > 0.0 for p in self.chaos_rates.values())

    def rng_seed_for(self, workload: str, technique: str) -> int:
        """Seed for one run's injector RNG stream.

        Independent of attempt number, so a retried workload replays the
        identical hardware-fault sequence bit for bit.
        """
        return _stable_seed(self.seed, "inject", workload, technique)

    def chaos_action(self, workload: str, attempt: int) -> str:
        """Worker behaviour for ``workload`` on its ``attempt``-th try."""
        script = self.chaos.get(workload)
        if script is None:
            script = self.chaos.get("*")
        if script is not None:
            return script[attempt] if attempt < len(script) else "ok"
        if self.chaos_rates:
            import numpy as np

            rng = np.random.default_rng(
                _stable_seed(self.seed, "chaos", workload, attempt)
            )
            for action in sorted(self.chaos_rates):
                if rng.random() < self.chaos_rates[action]:
                    return action
        return "ok"

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"seed": self.seed}
        if self.flip_rate:
            out["flip_rate"] = self.flip_rate
        if self.bank_rates is not None:
            out["bank_rates"] = list(self.bank_rates)
        if self.rate_bits != 1:
            out["rate_bits"] = self.rate_bits
        if self.events:
            out["events"] = [e.as_dict() for e in self.events]
        if self.chaos:
            out["chaos"] = {w: list(seq) for w, seq in self.chaos.items()}
        if self.chaos_rates:
            out["chaos_rates"] = dict(self.chaos_rates)
        if self.hang_seconds != 30.0:
            out["hang_seconds"] = self.hang_seconds
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FaultPlan":
        known = {
            "seed", "flip_rate", "bank_rates", "rate_bits", "events",
            "chaos", "chaos_rates", "hang_seconds",
        }
        unknown = set(raw) - known
        if unknown:
            raise ValueError(
                f"unknown fault-plan field(s) {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        kwargs = dict(raw)
        if "bank_rates" in kwargs and kwargs["bank_rates"] is not None:
            kwargs["bank_rates"] = tuple(kwargs["bank_rates"])
        if "events" in kwargs:
            kwargs["events"] = tuple(
                FaultEvent.from_dict(e) for e in kwargs["events"]
            )
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        return atomic_write(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        try:
            text = Path(path).read_text(encoding="utf-8")
            return cls.from_json(text)
        except (OSError, json.JSONDecodeError, ValueError, TypeError) as exc:
            raise ValueError(f"cannot load fault plan from {path}: {exc}") from exc
