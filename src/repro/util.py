"""Small shared utilities with no simulation dependencies.

Currently: crash-safe file writes.  Result files (CSV exports, benchmark
baselines, sweep checkpoints) must never be left half-written by a kill
mid-write -- a truncated ``BENCH_*.json`` or checkpoint would silently
poison later runs.  :func:`atomic_write` provides the standard
write-to-temp + ``os.replace`` idiom: the destination either keeps its old
content or atomically gains the complete new content, never anything in
between.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["atomic_write", "atomic_write_json", "stable_fingerprint"]


def stable_fingerprint(payload: Any, length: int = 16) -> str:
    """Hex SHA-256 prefix of a canonically serialised JSON-able payload.

    Canonical form is ``json.dumps(payload, sort_keys=True, default=str)``
    -- dict ordering never matters, floats print shortest-round-trip, and
    non-JSON leaves (paths, enums) degrade deterministically via ``str``.
    Both the sweep checkpoint fingerprint and the content-addressed
    result-cache key are built on this, so the two can never drift apart
    in how they canonicalise the same inputs.
    """
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:length]


def atomic_write(
    path: str | Path,
    data: str | bytes,
    encoding: str = "utf-8",
    fsync: bool = False,
) -> Path:
    """Write ``data`` to ``path`` atomically; returns the resolved path.

    The data is written to a uniquely named temporary file in the same
    directory (same filesystem, so the final rename cannot cross devices)
    and moved into place with :func:`os.replace`, which is atomic on
    POSIX and Windows.  A crash at any point leaves either the old file
    or the complete new file -- never a truncation.

    ``fsync=True`` additionally flushes the temp file to disk before the
    rename, hardening against power loss as well as process death (at
    measurable cost; checkpointers that record many small units should
    leave it off and rely on process-crash atomicity).
    """
    path = Path(path)
    mode = "wb" if isinstance(data, bytes) else "w"
    kwargs = {} if isinstance(data, bytes) else {"encoding": encoding}
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode, **kwargs) as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(
    path: str | Path, obj: Any, indent: int | None = 2, fsync: bool = False
) -> Path:
    """Serialise ``obj`` as JSON and write it atomically (trailing newline)."""
    return atomic_write(
        path, json.dumps(obj, indent=indent, sort_keys=True) + "\n", fsync=fsync
    )
