"""Technology-comparison evaluation (measuring the paper's Section 1 case).

:func:`evaluate_technology` runs one workload on one LLC technology:

* **eDRAM** uses the requested refresh technique (baseline / RPV / ESTEEM
  / ...) exactly as in the main experiments.
* **SRAM / STT-RAM / ReRAM** need no refresh; they run with the no-refresh
  engine, scaled leakage, per-write energy surcharges, and asymmetric
  write latency.
* NVM technologies additionally track per-line write counts and report a
  wear-out lifetime estimate (endurance / hottest line's write rate) --
  the "limited write endurance ... critical bottleneck" of Section 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SimConfig
from repro.energy.params import EnergyParams
from repro.tech.params import TechnologyParams
from repro.timing.core_model import CoreState
from repro.timing.system import System, SystemResult
from repro.workloads.trace import Trace

__all__ = ["TechResult", "TechSystem", "evaluate_technology"]

_SECONDS_PER_YEAR = 365.25 * 24 * 3600


@dataclass(frozen=True)
class TechResult:
    """Outcome of one workload on one LLC technology."""

    technology: str
    technique: str
    result: SystemResult
    #: Total memory-subsystem energy including the write surcharge.
    total_energy_j: float
    #: Extra dynamic energy charged for the technology's expensive writes.
    write_surcharge_j: float
    #: L2 write accesses observed.
    l2_writes: int
    #: Estimated years to wear out the hottest line; None = unlimited.
    lifetime_years: float | None

    @property
    def ipc(self) -> float:
        """First core's measured-window IPC."""
        return self.result.ipcs[0]

    @property
    def refresh_share(self) -> float:
        """Fraction of L2 energy spent refreshing."""
        l2 = self.result.energy.l2_total_j
        return self.result.energy.l2_refresh_j / l2 if l2 else 0.0


class TechSystem(System):
    """A :class:`System` with technology-specific write latency/energy."""

    def __init__(
        self,
        config: SimConfig,
        traces: list[Trace],
        technology: TechnologyParams,
        technique: str = "baseline",
    ) -> None:
        if not technology.needs_refresh and technique not in (
            "no-refresh",
            "baseline",
        ):
            raise ValueError(
                f"{technology.name} does not refresh; technique {technique!r} "
                "is eDRAM-specific"
            )
        effective = technique if technology.needs_refresh else "no-refresh"
        config = config.with_l2(latency_cycles=technology.read_latency_cycles)
        super().__init__(config, traces, effective)
        self.technology = technology
        self._write_penalty = float(
            technology.write_latency_cycles - technology.read_latency_cycles
        )
        # Scale the calibrated eDRAM constants to this technology.
        base = EnergyParams.for_cache_size(config.l2.size_bytes)
        self.energy.params = EnergyParams(
            l2_dynamic_j=base.l2_dynamic_j * technology.read_energy_scale,
            l2_leakage_w=base.l2_leakage_w * technology.leakage_scale,
            mem_dynamic_j=base.mem_dynamic_j,
            mem_leakage_w=base.mem_leakage_w,
            transition_j=base.transition_j,
        )
        self._base_dynamic_j = base.l2_dynamic_j
        if technology.write_endurance is not None:
            self.l2.write_counts = np.zeros(self.l2.state.num_lines, dtype=np.int64)

    def _service(
        self,
        core: CoreState,
        addr: int,
        is_write: bool,
        now: int,
        window: int,
    ) -> float:
        latency = super()._service(core, addr, is_write, now, window)
        if is_write:
            latency += self._write_penalty
        return latency


def evaluate_technology(
    technology: TechnologyParams,
    config: SimConfig,
    traces: list[Trace],
    technique: str = "baseline",
) -> TechResult:
    """Run one workload on one technology and post-process the energy."""
    if technology.needs_refresh:
        config = config.with_retention_us(technology.retention_us)
    sysm = TechSystem(config, traces, technology, technique)
    # Always count writes so the surcharge is exact.
    if sysm.l2.write_counts is None:
        sysm.l2.write_counts = np.zeros(sysm.l2.state.num_lines, dtype=np.int64)
    result = sysm.run()

    writes = int(sysm.l2.write_counts.sum())
    surcharge = (
        writes
        * sysm._base_dynamic_j
        * (technology.write_energy_scale - technology.read_energy_scale)
    )
    total = result.energy.total_j + max(0.0, surcharge)

    lifetime = None
    if technology.write_endurance is not None:
        hottest = int(sysm.l2.write_counts.max())
        seconds = result.total_cycles / config.frequency_hz
        if hottest > 0 and seconds > 0:
            rate = hottest / seconds  # writes/s to the hottest line
            lifetime = technology.write_endurance / rate / _SECONDS_PER_YEAR

    return TechResult(
        technology=technology.name,
        technique=sysm.technique,
        result=result,
        total_energy_j=total,
        write_surcharge_j=max(0.0, surcharge),
        l2_writes=writes,
        lifetime_years=lifetime,
    )
