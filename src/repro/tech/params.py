"""Per-technology LLC cell parameters.

Values are expressed *relative to the paper's eDRAM numbers* (Table 2)
so the comparison inherits the calibrated absolute scale.  Sources for the
relative factors, all from the paper's own framing and its citations:

* **SRAM**: "nearly 1/8th leakage power consumption [for eDRAM] compared
  to SRAM" (Section 1, citing Agrawal et al. [4]) -> SRAM leakage = 8x.
  Slightly faster access; no refresh; effectively unlimited endurance;
  ~4x larger cells (Section 1's density argument [40]).
* **STT-RAM**: near-zero array leakage (peripheral logic remains: ~0.15x),
  reads comparable to SRAM, writes slow and energy-hungry ("limited write
  endurance and high write-latency", Section 1, citing Qureshi et al.
  [36]; Chang et al.'s L3C study [11] uses ~2-3x read latency for writes
  and ~5-8x write energy).  Endurance ~4e12 writes.
* **ReRAM**: similar leakage profile, worse write energy/latency, and the
  critical weakness the paper alludes to -- endurance around 1e8 writes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TECHNOLOGIES", "TechnologyParams", "get_technology"]


@dataclass(frozen=True)
class TechnologyParams:
    """One memory technology's LLC characteristics, relative to eDRAM."""

    name: str
    #: Array leakage relative to the Table 2 eDRAM value.
    leakage_scale: float
    #: Read (and refresh, where applicable) dynamic energy scale.
    read_energy_scale: float
    #: Write dynamic energy scale.
    write_energy_scale: float
    #: L2 access latency in cycles (reads / writes).
    read_latency_cycles: int
    write_latency_cycles: int
    #: Retention period in microseconds; ``None`` means no refresh needed.
    retention_us: float | None
    #: Maximum writes per cell before wear-out; ``None`` = unlimited.
    write_endurance: float | None
    #: Relative cell area (density argument; eDRAM = 1.0).
    cell_area_scale: float

    def __post_init__(self) -> None:
        if self.leakage_scale < 0 or self.read_energy_scale <= 0:
            raise ValueError("energy scales must be positive")
        if self.write_energy_scale <= 0:
            raise ValueError("write energy scale must be positive")
        if min(self.read_latency_cycles, self.write_latency_cycles) <= 0:
            raise ValueError("latencies must be positive")
        if self.retention_us is not None and self.retention_us <= 0:
            raise ValueError("retention must be positive or None")
        if self.write_endurance is not None and self.write_endurance <= 0:
            raise ValueError("endurance must be positive or None")

    @property
    def needs_refresh(self) -> bool:
        """Whether the technology's cells lose charge (eDRAM only)."""
        return self.retention_us is not None


TECHNOLOGIES: dict[str, TechnologyParams] = {
    "edram": TechnologyParams(
        name="edram",
        leakage_scale=1.0,
        read_energy_scale=1.0,
        write_energy_scale=1.0,
        read_latency_cycles=12,
        write_latency_cycles=12,
        retention_us=50.0,
        write_endurance=None,
        cell_area_scale=1.0,
    ),
    "sram": TechnologyParams(
        name="sram",
        leakage_scale=8.0,
        read_energy_scale=0.9,
        write_energy_scale=0.9,
        read_latency_cycles=10,
        write_latency_cycles=10,
        retention_us=None,
        write_endurance=None,
        cell_area_scale=4.0,
    ),
    "sttram": TechnologyParams(
        name="sttram",
        leakage_scale=0.15,
        read_energy_scale=0.9,
        write_energy_scale=6.0,
        read_latency_cycles=10,
        write_latency_cycles=30,
        retention_us=None,
        write_endurance=4e12,
        cell_area_scale=0.8,
    ),
    "reram": TechnologyParams(
        name="reram",
        leakage_scale=0.10,
        read_energy_scale=0.9,
        write_energy_scale=8.0,
        read_latency_cycles=10,
        write_latency_cycles=45,
        retention_us=None,
        write_endurance=1e8,
        cell_area_scale=0.6,
    ),
}


def get_technology(name: str) -> TechnologyParams:
    """Look up a technology by name ("edram", "sram", "sttram", "reram")."""
    try:
        return TECHNOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown technology {name!r}; known: {sorted(TECHNOLOGIES)}"
        ) from None
