"""LLC technology comparison substrate (paper Sections 1-2 context).

The paper motivates eDRAM by comparison: SRAM leaks ~8x more, NVMs
(STT-RAM/ReRAM) have near-zero leakage but limited write endurance and
slow, expensive writes.  This package models those alternatives around the
same cache geometry so the motivation can be measured
(``benchmarks/bench_tech_comparison.py``).
"""

from repro.tech.params import TECHNOLOGIES, TechnologyParams, get_technology
from repro.tech.compare import TechResult, TechSystem, evaluate_technology

__all__ = [
    "TECHNOLOGIES",
    "TechResult",
    "TechSystem",
    "TechnologyParams",
    "evaluate_technology",
    "get_technology",
]
